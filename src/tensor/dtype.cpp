#include "tensor/dtype.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace rangerpp::tensor {

namespace {

constexpr FixedPointFormat kFixed32{32, 10};
constexpr FixedPointFormat kFixed16{16, 2};

// Encodes into two's-complement fixed point with saturation.
std::uint64_t fixed_encode(const FixedPointFormat& f, float value) {
  const double scaled = std::llround(static_cast<double>(value) *
                                     static_cast<double>(1LL << f.frac_bits));
  const std::int64_t max_raw = (1LL << (f.total_bits - 1)) - 1;
  const std::int64_t min_raw = -(1LL << (f.total_bits - 1));
  std::int64_t raw;
  if (std::isnan(value)) {
    raw = 0;
  } else if (scaled >= static_cast<double>(max_raw)) {
    raw = max_raw;
  } else if (scaled <= static_cast<double>(min_raw)) {
    raw = min_raw;
  } else {
    raw = static_cast<std::int64_t>(scaled);
  }
  const std::uint64_t mask =
      f.total_bits == 64 ? ~0ULL : ((1ULL << f.total_bits) - 1);
  return static_cast<std::uint64_t>(raw) & mask;
}

float fixed_decode(const FixedPointFormat& f, std::uint64_t bits) {
  const std::uint64_t mask =
      f.total_bits == 64 ? ~0ULL : ((1ULL << f.total_bits) - 1);
  std::uint64_t raw = bits & mask;
  // Sign-extend.
  const std::uint64_t sign_bit = 1ULL << (f.total_bits - 1);
  std::int64_t value;
  if (raw & sign_bit) {
    value = static_cast<std::int64_t>(raw | ~mask);
  } else {
    value = static_cast<std::int64_t>(raw);
  }
  return static_cast<float>(static_cast<double>(value) /
                            static_cast<double>(1LL << f.frac_bits));
}

}  // namespace

double FixedPointFormat::max_value() const {
  return static_cast<double>((1LL << (total_bits - 1)) - 1) /
         static_cast<double>(1LL << frac_bits);
}

double FixedPointFormat::min_value() const {
  return -static_cast<double>(1LL << (total_bits - 1)) /
         static_cast<double>(1LL << frac_bits);
}

double FixedPointFormat::resolution() const {
  return 1.0 / static_cast<double>(1LL << frac_bits);
}

FixedPointFormat fixed32_format() { return kFixed32; }
FixedPointFormat fixed16_format() { return kFixed16; }

std::string_view dtype_name(DType d) {
  switch (d) {
    case DType::kFloat32:
      return "float32";
    case DType::kFixed32:
      return "fixed32(Q21.10)";
    case DType::kFixed16:
      return "fixed16(Q13.2)";
  }
  return "unknown";
}

int dtype_bits(DType d) {
  switch (d) {
    case DType::kFloat32:
      return 32;
    case DType::kFixed32:
      return 32;
    case DType::kFixed16:
      return 16;
  }
  return 0;
}

std::uint64_t dtype_encode(DType d, float value) {
  switch (d) {
    case DType::kFloat32:
      return std::bit_cast<std::uint32_t>(value);
    case DType::kFixed32:
      return fixed_encode(kFixed32, value);
    case DType::kFixed16:
      return fixed_encode(kFixed16, value);
  }
  throw std::invalid_argument("dtype_encode: bad dtype");
}

float dtype_decode(DType d, std::uint64_t bits) {
  switch (d) {
    case DType::kFloat32:
      return std::bit_cast<float>(static_cast<std::uint32_t>(bits));
    case DType::kFixed32:
      return fixed_decode(kFixed32, bits);
    case DType::kFixed16:
      return fixed_decode(kFixed16, bits);
  }
  throw std::invalid_argument("dtype_decode: bad dtype");
}

namespace {

// Hoisted-constant round trip, bit-identical to
// fixed_decode(f, fixed_encode(f, x)) for every input:
//  * the encode comparisons run on the same llround(double) value;
//  * the clamped raw is already sign-correct and in range, so the
//    mask-then-sign-extend detour is the identity on it;
//  * decode's division by 2^frac_bits is exact, so multiplying by the
//    exactly-representable reciprocal yields the same double (and the
//    same float after narrowing).
template <int kTotal, int kFrac>
void fixed_quantize_span(std::span<float> v) {
  constexpr double kScale = static_cast<double>(1LL << kFrac);
  constexpr double kInvScale = 1.0 / kScale;
  constexpr std::int64_t kMaxRaw = (1LL << (kTotal - 1)) - 1;
  constexpr std::int64_t kMinRaw = -(1LL << (kTotal - 1));
  for (float& x : v) {
    const double scaled =
        std::llround(static_cast<double>(x) * kScale);
    std::int64_t raw;
    if (std::isnan(x)) {
      raw = 0;
    } else if (scaled >= static_cast<double>(kMaxRaw)) {
      raw = kMaxRaw;
    } else if (scaled <= static_cast<double>(kMinRaw)) {
      raw = kMinRaw;
    } else {
      raw = static_cast<std::int64_t>(scaled);
    }
    x = static_cast<float>(static_cast<double>(raw) * kInvScale);
  }
}

}  // namespace

void dtype_quantize_span(DType d, std::span<float> v) {
  switch (d) {
    case DType::kFloat32:
      return;
    case DType::kFixed32:
      fixed_quantize_span<32, 10>(v);
      return;
    case DType::kFixed16:
      fixed_quantize_span<16, 2>(v);
      return;
  }
  throw std::invalid_argument("dtype_quantize_span: bad dtype");
}

std::uint64_t dtype_flip_bit(DType d, std::uint64_t bits, int bit) {
  const int width = dtype_bits(d);
  if (bit < 0 || bit >= width)
    throw std::out_of_range("dtype_flip_bit: bit out of range");
  return bits ^ (1ULL << bit);
}

float dtype_flip_value(DType d, float value, int bit) {
  const std::uint64_t bits = dtype_encode(d, value);
  return dtype_decode(d, dtype_flip_bit(d, bits, bit));
}

std::uint64_t dtype_write_bit(DType d, std::uint64_t bits, int bit,
                              bool set) {
  const int width = dtype_bits(d);
  if (bit < 0 || bit >= width)
    throw std::out_of_range("dtype_write_bit: bit out of range");
  return set ? bits | (1ULL << bit) : bits & ~(1ULL << bit);
}

float dtype_write_bit_value(DType d, float value, int bit, bool set) {
  const std::uint64_t bits = dtype_encode(d, value);
  return dtype_decode(d, dtype_write_bit(d, bits, bit, set));
}

}  // namespace rangerpp::tensor

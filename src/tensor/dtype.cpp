#include "tensor/dtype.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace rangerpp::tensor {

namespace {

constexpr FixedPointFormat kFixed32{32, 10};
constexpr FixedPointFormat kFixed16{16, 2};
constexpr FixedPointFormat kInt8{8, 3};

// Encodes into two's-complement fixed point with saturation.  With
// zero_point = 0 the `shifted` value equals the llround result exactly,
// so every branch below matches the original symmetric encoder bit for
// bit — the fixed32/fixed16 determinism gates rest on that.
std::uint64_t fixed_encode(const FixedPointFormat& f, float value) {
  const std::int64_t max_raw = (1LL << (f.total_bits - 1)) - 1;
  const std::int64_t min_raw = -(1LL << (f.total_bits - 1));
  std::int64_t raw;
  if (std::isnan(value)) {
    // NaN decodes to 0.0: store the zero point, clamped into range.
    raw = f.zero_point > max_raw   ? max_raw
          : f.zero_point < min_raw ? min_raw
                                   : f.zero_point;
  } else if (std::isinf(value)) {
    // llround(inf) is unspecified (glibc: LLONG_MIN for either sign) —
    // saturate by sign, like any out-of-range finite value.
    raw = value > 0.0f ? max_raw : min_raw;
  } else {
    const double shifted =
        static_cast<double>(std::llround(
            static_cast<double>(value) *
            static_cast<double>(1LL << f.frac_bits))) +
        static_cast<double>(f.zero_point);
    if (shifted >= static_cast<double>(max_raw)) {
      raw = max_raw;
    } else if (shifted <= static_cast<double>(min_raw)) {
      raw = min_raw;
    } else {
      raw = static_cast<std::int64_t>(shifted);
    }
  }
  const std::uint64_t mask =
      f.total_bits == 64 ? ~0ULL : ((1ULL << f.total_bits) - 1);
  return static_cast<std::uint64_t>(raw) & mask;
}

float fixed_decode(const FixedPointFormat& f, std::uint64_t bits) {
  const std::uint64_t mask =
      f.total_bits == 64 ? ~0ULL : ((1ULL << f.total_bits) - 1);
  std::uint64_t raw = bits & mask;
  // Sign-extend.
  const std::uint64_t sign_bit = 1ULL << (f.total_bits - 1);
  std::int64_t value;
  if (raw & sign_bit) {
    value = static_cast<std::int64_t>(raw | ~mask);
  } else {
    value = static_cast<std::int64_t>(raw);
  }
  return static_cast<float>(static_cast<double>(value - f.zero_point) /
                            static_cast<double>(1LL << f.frac_bits));
}

}  // namespace

double FixedPointFormat::max_value() const {
  return static_cast<double>((1LL << (total_bits - 1)) - 1 - zero_point) /
         static_cast<double>(1LL << frac_bits);
}

double FixedPointFormat::min_value() const {
  return static_cast<double>(-(1LL << (total_bits - 1)) - zero_point) /
         static_cast<double>(1LL << frac_bits);
}

double FixedPointFormat::resolution() const {
  return 1.0 / static_cast<double>(1LL << frac_bits);
}

FixedPointFormat fixed32_format() { return kFixed32; }
FixedPointFormat fixed16_format() { return kFixed16; }
FixedPointFormat int8_format() { return kInt8; }

FixedPointFormat canonical_format(DType d) {
  switch (d) {
    case DType::kFloat32:
      return {32, 0};  // placeholder; the Float32 codec ignores it
    case DType::kFixed32:
      return kFixed32;
    case DType::kFixed16:
      return kFixed16;
    case DType::kInt8:
      return kInt8;
  }
  throw std::invalid_argument("canonical_format: bad dtype");
}

std::string_view dtype_name(DType d) {
  switch (d) {
    case DType::kFloat32:
      return "float32";
    case DType::kFixed32:
      return "fixed32(Q21.10)";
    case DType::kFixed16:
      return "fixed16(Q13.2)";
    case DType::kInt8:
      return "int8(Q4.3)";
  }
  return "unknown";
}

int dtype_bits(DType d) {
  switch (d) {
    case DType::kFloat32:
      return 32;
    case DType::kFixed32:
      return 32;
    case DType::kFixed16:
      return 16;
    case DType::kInt8:
      return 8;
  }
  return 0;
}

std::uint64_t dtype_encode(DType d, float value) {
  switch (d) {
    case DType::kFloat32:
      return std::bit_cast<std::uint32_t>(value);
    case DType::kFixed32:
      return fixed_encode(kFixed32, value);
    case DType::kFixed16:
      return fixed_encode(kFixed16, value);
    case DType::kInt8:
      return fixed_encode(kInt8, value);
  }
  throw std::invalid_argument("dtype_encode: bad dtype");
}

float dtype_decode(DType d, std::uint64_t bits) {
  switch (d) {
    case DType::kFloat32:
      return std::bit_cast<float>(static_cast<std::uint32_t>(bits));
    case DType::kFixed32:
      return fixed_decode(kFixed32, bits);
    case DType::kFixed16:
      return fixed_decode(kFixed16, bits);
    case DType::kInt8:
      return fixed_decode(kInt8, bits);
  }
  throw std::invalid_argument("dtype_decode: bad dtype");
}

namespace {

// Hoisted-constant round trip, bit-identical to
// fixed_decode(f, fixed_encode(f, x)) for every input:
//  * the encode comparisons run on the same llround(double) value;
//  * the clamped raw is already sign-correct and in range, so the
//    mask-then-sign-extend detour is the identity on it;
//  * decode's division by 2^frac_bits is exact, so multiplying by the
//    exactly-representable reciprocal yields the same double (and the
//    same float after narrowing).
template <int kTotal, int kFrac>
void fixed_quantize_span(std::span<float> v) {
  constexpr double kScale = static_cast<double>(1LL << kFrac);
  constexpr double kInvScale = 1.0 / kScale;
  constexpr std::int64_t kMaxRaw = (1LL << (kTotal - 1)) - 1;
  constexpr std::int64_t kMinRaw = -(1LL << (kTotal - 1));
  for (float& x : v) {
    std::int64_t raw;
    if (std::isnan(x)) {
      raw = 0;
    } else if (std::isinf(x)) {
      raw = x > 0.0f ? kMaxRaw : kMinRaw;
    } else {
      const double scaled =
          std::llround(static_cast<double>(x) * kScale);
      if (scaled >= static_cast<double>(kMaxRaw)) {
        raw = kMaxRaw;
      } else if (scaled <= static_cast<double>(kMinRaw)) {
        raw = kMinRaw;
      } else {
        raw = static_cast<std::int64_t>(scaled);
      }
    }
    x = static_cast<float>(static_cast<double>(raw) * kInvScale);
  }
}

// Runtime-parameter variant for calibrated (non-canonical) formats —
// same round trip as fixed_decode(f, fixed_encode(f, x)), with
// frac_bits/zero_point as loop-hoisted runtime values instead of
// template constants.
void fixed_quantize_span_rt(const FixedPointFormat& f, std::span<float> v) {
  const double scale = static_cast<double>(1LL << f.frac_bits);
  const double inv_scale = 1.0 / scale;
  const std::int64_t max_raw = (1LL << (f.total_bits - 1)) - 1;
  const std::int64_t min_raw = -(1LL << (f.total_bits - 1));
  const std::int64_t zp = f.zero_point;
  const std::int64_t nan_raw = zp > max_raw ? max_raw
                               : zp < min_raw ? min_raw
                                              : zp;
  for (float& x : v) {
    std::int64_t raw;
    if (std::isnan(x)) {
      raw = nan_raw;
    } else if (std::isinf(x)) {
      raw = x > 0.0f ? max_raw : min_raw;
    } else {
      const double shifted =
          static_cast<double>(std::llround(static_cast<double>(x) * scale)) +
          static_cast<double>(zp);
      if (shifted >= static_cast<double>(max_raw)) {
        raw = max_raw;
      } else if (shifted <= static_cast<double>(min_raw)) {
        raw = min_raw;
      } else {
        raw = static_cast<std::int64_t>(shifted);
      }
    }
    x = static_cast<float>(static_cast<double>(raw - zp) * inv_scale);
  }
}

}  // namespace

void dtype_quantize_span(DType d, std::span<float> v) {
  switch (d) {
    case DType::kFloat32:
      return;
    case DType::kFixed32:
      fixed_quantize_span<32, 10>(v);
      return;
    case DType::kFixed16:
      fixed_quantize_span<16, 2>(v);
      return;
    case DType::kInt8:
      fixed_quantize_span<8, 3>(v);
      return;
  }
  throw std::invalid_argument("dtype_quantize_span: bad dtype");
}

std::uint64_t dtype_flip_bit(DType d, std::uint64_t bits, int bit) {
  const int width = dtype_bits(d);
  if (bit < 0 || bit >= width)
    throw std::out_of_range("dtype_flip_bit: bit out of range");
  return bits ^ (1ULL << bit);
}

float dtype_flip_value(DType d, float value, int bit) {
  const std::uint64_t bits = dtype_encode(d, value);
  return dtype_decode(d, dtype_flip_bit(d, bits, bit));
}

std::uint64_t dtype_write_bit(DType d, std::uint64_t bits, int bit,
                              bool set) {
  const int width = dtype_bits(d);
  if (bit < 0 || bit >= width)
    throw std::out_of_range("dtype_write_bit: bit out of range");
  return set ? bits | (1ULL << bit) : bits & ~(1ULL << bit);
}

float dtype_write_bit_value(DType d, float value, int bit, bool set) {
  const std::uint64_t bits = dtype_encode(d, value);
  return dtype_decode(d, dtype_write_bit(d, bits, bit, set));
}

namespace {

bool is_canonical(const QScheme& s) {
  return s.dtype == DType::kFloat32 || s.fmt == canonical_format(s.dtype);
}

}  // namespace

std::uint64_t q_encode(const QScheme& s, float value) {
  if (s.dtype == DType::kFloat32)
    return std::bit_cast<std::uint32_t>(value);
  return fixed_encode(s.fmt, value);
}

float q_decode(const QScheme& s, std::uint64_t bits) {
  if (s.dtype == DType::kFloat32)
    return std::bit_cast<float>(static_cast<std::uint32_t>(bits));
  return fixed_decode(s.fmt, bits);
}

float q_quantize(const QScheme& s, float value) {
  if (s.dtype == DType::kFloat32) return value;
  return fixed_decode(s.fmt, fixed_encode(s.fmt, value));
}

void q_quantize_span(const QScheme& s, std::span<float> v) {
  // Canonical schemes route through the templated spans so the
  // dtype-only paths (and their byte gates) see the exact code they
  // always have.
  if (is_canonical(s)) {
    dtype_quantize_span(s.dtype, v);
    return;
  }
  fixed_quantize_span_rt(s.fmt, v);
}

float q_flip_value(const QScheme& s, float value, int bit) {
  if (is_canonical(s)) return dtype_flip_value(s.dtype, value, bit);
  const int width = s.fmt.total_bits;
  if (bit < 0 || bit >= width)
    throw std::out_of_range("q_flip_value: bit out of range");
  return fixed_decode(s.fmt, fixed_encode(s.fmt, value) ^ (1ULL << bit));
}

float q_write_bit_value(const QScheme& s, float value, int bit, bool set) {
  if (is_canonical(s)) return dtype_write_bit_value(s.dtype, value, bit, set);
  const int width = s.fmt.total_bits;
  if (bit < 0 || bit >= width)
    throw std::out_of_range("q_write_bit_value: bit out of range");
  const std::uint64_t bits = fixed_encode(s.fmt, value);
  return fixed_decode(
      s.fmt, set ? bits | (1ULL << bit) : bits & ~(1ULL << bit));
}

FixedPointFormat int8_format_for_range(double lo, double hi) {
  if (!std::isfinite(lo) || !std::isfinite(hi) || !(lo < hi)) return kInt8;
  // Largest frac_bits whose scaled span fits the raw range [-128, 127]
  // with one step of headroom (span * 2^f <= 254).
  const double span = hi - lo;
  int frac_bits = -1;
  for (int f = 24; f >= 0; --f) {
    if (span * static_cast<double>(1LL << f) <= 254.0) {
      frac_bits = f;
      break;
    }
  }
  if (frac_bits < 0) return kInt8;  // too wide even at 1.0 resolution
  const double scale = static_cast<double>(1LL << frac_bits);
  // Feasible zero points keep both endpoints representable:
  //   lo*2^f + zp >= -128   and   hi*2^f + zp <= 127.
  // The headroom above guarantees the interval is non-empty; centre the
  // value span in the raw range within it.
  const auto zp_min =
      static_cast<std::int64_t>(std::ceil(-128.0 - lo * scale));
  const auto zp_max =
      static_cast<std::int64_t>(std::floor(127.0 - hi * scale));
  std::int64_t zp = std::llround(-(lo + hi) * scale / 2.0);
  if (zp < zp_min) zp = zp_min;
  if (zp > zp_max) zp = zp_max;
  return {8, frac_bits, zp};
}

}  // namespace rangerpp::tensor

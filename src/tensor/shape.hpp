// Tensor shapes.  rangerpp uses NHWC layout for 4-D activations (batch is
// always 1 during inference experiments) and plain row-major layout for
// lower ranks.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace rangerpp::tensor {

class Shape {
 public:
  static constexpr int kMaxRank = 4;

  Shape() = default;
  Shape(std::initializer_list<int> dims);

  int rank() const { return rank_; }
  int dim(int i) const;
  std::size_t elements() const;

  // NHWC accessors for rank-4 shapes (checked).
  int n() const { return dim(0); }
  int h() const { return dim(1); }
  int w() const { return dim(2); }
  int c() const { return dim(3); }

  bool operator==(const Shape& other) const;
  bool operator!=(const Shape& other) const { return !(*this == other); }

  std::string to_string() const;

 private:
  int rank_ = 0;
  std::array<int, kMaxRank> dims_{};
};

}  // namespace rangerpp::tensor

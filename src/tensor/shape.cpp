#include "tensor/shape.hpp"

#include <sstream>
#include <stdexcept>

namespace rangerpp::tensor {

Shape::Shape(std::initializer_list<int> dims) {
  if (dims.size() > static_cast<std::size_t>(kMaxRank))
    throw std::invalid_argument("Shape: rank > 4 not supported");
  rank_ = static_cast<int>(dims.size());
  int i = 0;
  for (int d : dims) {
    if (d <= 0) throw std::invalid_argument("Shape: non-positive dimension");
    dims_[i++] = d;
  }
}

int Shape::dim(int i) const {
  if (i < 0 || i >= rank_) throw std::out_of_range("Shape::dim");
  return dims_[static_cast<std::size_t>(i)];
}

std::size_t Shape::elements() const {
  if (rank_ == 0) return 0;
  std::size_t n = 1;
  for (int i = 0; i < rank_; ++i) n *= static_cast<std::size_t>(dims_[i]);
  return n;
}

bool Shape::operator==(const Shape& other) const {
  if (rank_ != other.rank_) return false;
  for (int i = 0; i < rank_; ++i)
    if (dims_[i] != other.dims_[i]) return false;
  return true;
}

std::string Shape::to_string() const {
  std::ostringstream out;
  out << '[';
  for (int i = 0; i < rank_; ++i) {
    if (i) out << ',';
    out << dims_[i];
  }
  out << ']';
  return out.str();
}

}  // namespace rangerpp::tensor

#include "core/calibration.hpp"

namespace rangerpp::core {

Int8Formats int8_calibration(const Bounds& bounds) {
  Int8Formats formats;
  formats.reserve(bounds.size());
  for (const auto& [name, b] : bounds)
    formats.emplace(name,
                    tensor::int8_format_for_range(
                        static_cast<double>(b.low),
                        static_cast<double>(b.up)));
  return formats;
}

}  // namespace rangerpp::core

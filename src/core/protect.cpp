#include "core/protect.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rangerpp::core {

ProtectResult protect(const graph::Graph& g,
                      const std::vector<fi::Feeds>& samples,
                      const ProtectOptions& options) {
  ProtectResult result;
  result.bounds =
      RangeProfiler{options.profile}.derive_bounds(g, samples);
  RangerTransform transform{options.transform};
  result.protected_graph = transform.apply(g, result.bounds);
  result.stats = transform.last_stats();
  return result;
}

void save_bounds(const Bounds& bounds, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_bounds: cannot open " + path);
  out.precision(9);
  for (const auto& [name, b] : bounds)
    out << name << ' ' << b.low << ' ' << b.up << '\n';
  if (!out) throw std::runtime_error("save_bounds: write failed " + path);
}

bool load_bounds(Bounds& bounds, const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  Bounds loaded;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string name;
    Bound b;
    if (!(row >> name >> b.low >> b.up)) return false;
    if (b.low > b.up) return false;
    loaded.emplace(std::move(name), b);
  }
  bounds = std::move(loaded);
  return true;
}

}  // namespace rangerpp::core

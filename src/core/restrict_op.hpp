// Range-restriction operator variants for the §VI-C design alternatives.
// The default Ranger policy (clamp) uses ops::ClampOp; the zero-reset and
// random-replacement alternatives live here.
//
// Both variants implement ops::BlockedKernelProvider: under the blocked
// kernel backend they run as fused restriction kernels (restrict +
// quantise in one sweep over parallel element blocks) that are
// bit-identical to their scalar compute.  Neither derives the elementwise
// base classes on purpose — RandomReplaceOp's result depends on the
// element *index*, which would break the gather/scatter trick of the
// element-sparse incremental kernels.
#pragma once

#include <cstdint>

#include "ops/backend.hpp"
#include "ops/op.hpp"

namespace rangerpp::core {

// Resets every out-of-bound value to 0 (the Minerva-style alternative the
// paper shows destroys accuracy).
class ZeroResetOp final : public ops::Op, public ops::BlockedKernelProvider {
 public:
  ZeroResetOp(float low, float high);

  ops::OpKind kind() const override { return ops::OpKind::kClamp; }
  tensor::Tensor compute(
      std::span<const tensor::Tensor> in) const override;
  tensor::Shape infer_shape(
      std::span<const tensor::Shape> in) const override;
  std::uint64_t flops(std::span<const tensor::Shape> in) const override {
    return 2 * in[0].elements();
  }
  ops::CompiledKernel blocked_kernel(
      const tensor::QScheme& scheme) const override;
  // Zero-reset vectorizes per-element-identically (compare-mask + blend),
  // so the simd backend gets a true vector kernel, not just the blocked
  // fallback.
  ops::CompiledKernel simd_kernel(
      const tensor::QScheme& scheme) const override;

 private:
  float low_, high_;
};

// Replaces every out-of-bound value with a uniform draw from [low, high].
// Deterministic given (seed, element index) so repeated executions of the
// same graph are reproducible.
class RandomReplaceOp final : public ops::Op,
                              public ops::BlockedKernelProvider {
 public:
  RandomReplaceOp(float low, float high, std::uint64_t seed);

  ops::OpKind kind() const override { return ops::OpKind::kClamp; }
  tensor::Tensor compute(
      std::span<const tensor::Tensor> in) const override;
  tensor::Shape infer_shape(
      std::span<const tensor::Shape> in) const override;
  std::uint64_t flops(std::span<const tensor::Shape> in) const override {
    return 2 * in[0].elements();
  }
  ops::CompiledKernel blocked_kernel(
      const tensor::QScheme& scheme) const override;

 private:
  float low_, high_;
  std::uint64_t seed_;
};

}  // namespace rangerpp::core

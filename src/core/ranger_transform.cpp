#include "core/ranger_transform.hpp"

#include <optional>
#include <unordered_map>

#include "core/restrict_op.hpp"
#include "ops/activation_ops.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace rangerpp::core {

namespace {

ops::OpPtr make_restrict_op(RestrictionPolicy policy, Bound b,
                            std::uint64_t seed, std::size_t index) {
  switch (policy) {
    case RestrictionPolicy::kClamp:
      return std::make_shared<ops::ClampOp>(b.low, b.up);
    case RestrictionPolicy::kZero:
      return std::make_shared<ZeroResetOp>(b.low, b.up);
    case RestrictionPolicy::kRandom:
      return std::make_shared<RandomReplaceOp>(
          b.low, b.up, util::derive_seed(seed, index));
  }
  return nullptr;
}

}  // namespace

graph::Graph RangerTransform::apply(const graph::Graph& g,
                                    const Bounds& bounds) const {
  util::Timer timer;
  stats_ = {};

  // Value-range annotation for each *source* node id: present when the
  // node's output is known to lie within the bound after restriction.
  // Computed on the fly during the single topological copy pass — the
  // graph's append-only invariant guarantees producers are visited first.
  std::unordered_map<graph::NodeId, Bound> annotation;

  graph::Graph out = g.import_with_remap(
      [&](const graph::Node& src, graph::NodeId copied,
          graph::Graph& dst) -> std::optional<graph::NodeId> {
        const ops::OpKind kind = src.op->kind();
        std::optional<Bound> bound;

        if (ops::is_activation(kind)) {
          const auto it = bounds.find(src.name);
          if (it != bounds.end()) {
            bound = it->second;
            ++stats_.activations_bounded;
          }
        } else if (!options_.extend_to_transparent_ops) {
          // Ablation: ACT-only restriction, no propagation.
        } else if (kind == ops::OpKind::kConcat) {
          // Both inputs must be restricted; merged bound is
          // (min of lows, max of ups) — Algorithm 1 lines 7-8.
          if (src.inputs.size() == 2) {
            const auto a = annotation.find(src.inputs[0]);
            const auto b = annotation.find(src.inputs[1]);
            if (a != annotation.end() && b != annotation.end()) {
              bound = Bound{std::min(a->second.low, b->second.low),
                            std::max(a->second.up, b->second.up)};
              ++stats_.transparent_ops_bounded;
            }
          }
        } else if (ops::is_bound_transparent(kind) &&
                   src.inputs.size() == 1) {
          // Max-Pool / Avg-Pool / Reshape / Flatten / Dropout inherit the
          // bound of their (restricted) input — Algorithm 1 lines 5-6.
          const auto it = annotation.find(src.inputs[0]);
          if (it != annotation.end()) {
            bound = it->second;
            ++stats_.transparent_ops_bounded;
          }
        }

        if (!bound) return std::nullopt;
        // Idempotence: a node already followed by its restriction op (the
        // graph was protected before) is left alone — re-protecting a
        // protected graph is a no-op rather than a name collision.
        if (g.find(src.name + kSuffix) != graph::kInvalidNode) {
          if (ops::is_activation(kind)) --stats_.activations_bounded;
          else --stats_.transparent_ops_bounded;
          return std::nullopt;
        }
        annotation.emplace(src.id, *bound);

        const std::size_t index = stats_.restriction_ops_inserted++;
        const graph::NodeId restrict = dst.add(
            src.name + kSuffix,
            make_restrict_op(options_.policy, *bound, options_.seed, index),
            {copied},
            // Restriction ops are themselves injectable: the paper's FI
            // considers faults in all operations of the protected network.
            /*injectable=*/true);
        return restrict;
      });

  stats_.elapsed_seconds = timer.elapsed_seconds();
  return out;
}

namespace {

// Adapts RangerTransform's graph-to-graph rewrite to the pass interface by
// round-tripping through Graph — the transform's import_with_remap splice
// logic stays the single implementation of Algorithm 1.
class RangerInsertionPass final : public graph::Pass {
 public:
  RangerInsertionPass(Bounds bounds, TransformOptions options)
      : bounds_(std::move(bounds)), transform_(options) {}

  std::string_view name() const override { return "ranger_insert"; }

  void run(graph::OpModel& m, graph::PassContext&) const override {
    m = graph::OpModel::from_graph(
        transform_.apply(m.to_graph(), bounds_));
  }

 private:
  Bounds bounds_;
  RangerTransform transform_;
};

}  // namespace

graph::PassPtr ranger_pass(Bounds bounds, TransformOptions options) {
  return std::make_shared<RangerInsertionPass>(std::move(bounds), options);
}

}  // namespace rangerpp::core

// One-call convenience API: profile + transform, plus (de)serialisation of
// restriction bounds so a deployment can ship profiled bounds as a small
// sidecar file instead of re-profiling (the paper's step-1 artifact).
#pragma once

#include <string>

#include "core/range_profiler.hpp"
#include "core/ranger_transform.hpp"

namespace rangerpp::core {

struct ProtectOptions {
  ProfileOptions profile;
  TransformOptions transform;
};

struct ProtectResult {
  graph::Graph protected_graph;
  Bounds bounds;
  TransformStats stats;
};

// Profiles `g` on `samples` and returns the Ranger-protected graph.
ProtectResult protect(const graph::Graph& g,
                      const std::vector<fi::Feeds>& samples,
                      const ProtectOptions& options = {});

// Bounds sidecar file: one "<name> <low> <up>" line per layer (text, so
// bounds are diffable and auditable — they are a safety artifact).
void save_bounds(const Bounds& bounds, const std::string& path);
bool load_bounds(Bounds& bounds, const std::string& path);

}  // namespace rangerpp::core

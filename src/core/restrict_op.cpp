#include "core/restrict_op.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace rangerpp::core {

namespace {

void check_bounds(float low, float high) {
  if (low > high)
    throw std::invalid_argument("restriction op: low > high");
}

tensor::Shape unary_shape(std::span<const tensor::Shape> in) {
  if (in.size() != 1)
    throw std::invalid_argument("restriction op: wrong arity");
  return in[0];
}

}  // namespace

ZeroResetOp::ZeroResetOp(float low, float high) : low_(low), high_(high) {
  check_bounds(low, high);
}

tensor::Shape ZeroResetOp::infer_shape(
    std::span<const tensor::Shape> in) const {
  return unary_shape(in);
}

tensor::Tensor ZeroResetOp::compute(
    std::span<const tensor::Tensor> in) const {
  tensor::Tensor y = in[0].clone();
  for (float& v : y.mutable_values())
    if (v < low_ || v > high_ || std::isnan(v)) v = 0.0f;
  return y;
}

RandomReplaceOp::RandomReplaceOp(float low, float high, std::uint64_t seed)
    : low_(low), high_(high), seed_(seed) {
  check_bounds(low, high);
}

tensor::Shape RandomReplaceOp::infer_shape(
    std::span<const tensor::Shape> in) const {
  return unary_shape(in);
}

tensor::Tensor RandomReplaceOp::compute(
    std::span<const tensor::Tensor> in) const {
  tensor::Tensor y = in[0].clone();
  std::span<float> v = y.mutable_values();
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] < low_ || v[i] > high_ || std::isnan(v[i])) {
      util::Rng rng(util::derive_seed(seed_, i));
      v[i] = static_cast<float>(rng.uniform(low_, high_));
    }
  }
  return y;
}

}  // namespace rangerpp::core

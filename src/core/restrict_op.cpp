#include "core/restrict_op.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"
#include "ops/kernels_blocked.hpp"
#include "ops/kernels_simd.hpp"

namespace rangerpp::core {

namespace {

void check_bounds(float low, float high) {
  if (low > high)
    throw std::invalid_argument("restriction op: low > high");
}

tensor::Shape unary_shape(std::span<const tensor::Shape> in) {
  if (in.size() != 1)
    throw std::invalid_argument("restriction op: wrong arity");
  return in[0];
}

// Fused restrict + quantise sweep over ops::blocked's shared block
// scheduler; `fn(i, v)` must replicate the scalar compute's per-element
// result exactly.
template <typename Fn>
tensor::Tensor fused_restrict(const tensor::QScheme& scheme,
                              const tensor::Tensor& x, const Fn& fn) {
  tensor::Tensor y = x.clone();
  const std::span<float> yv = y.mutable_values();
  ops::blocked::run_elementwise(yv.size(), [&](std::size_t lo,
                                               std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) yv[i] = fn(i, yv[i]);
    tensor::q_quantize_span(scheme, yv.subspan(lo, hi - lo));
  });
  return y;
}

}  // namespace

ZeroResetOp::ZeroResetOp(float low, float high) : low_(low), high_(high) {
  check_bounds(low, high);
}

tensor::Shape ZeroResetOp::infer_shape(
    std::span<const tensor::Shape> in) const {
  return unary_shape(in);
}

tensor::Tensor ZeroResetOp::compute(
    std::span<const tensor::Tensor> in) const {
  tensor::Tensor y = in[0].clone();
  for (float& v : y.mutable_values())
    if (v < low_ || v > high_ || std::isnan(v)) v = 0.0f;
  return y;
}

ops::CompiledKernel ZeroResetOp::blocked_kernel(
    const tensor::QScheme& scheme) const {
  const float low = low_, high = high_;
  return {[low, high, scheme](std::span<const tensor::Tensor> in) {
            return fused_restrict(
                scheme, in[0], [low, high](std::size_t, float v) {
                  return v < low || v > high || std::isnan(v) ? 0.0f : v;
                });
          },
          true};
}

ops::CompiledKernel ZeroResetOp::simd_kernel(
    const tensor::QScheme& scheme) const {
  const float low = low_, high = high_;
  return {[low, high, scheme](std::span<const tensor::Tensor> in) {
            return ops::simd::zero_reset(low, high, scheme, in);
          },
          true};
}

RandomReplaceOp::RandomReplaceOp(float low, float high, std::uint64_t seed)
    : low_(low), high_(high), seed_(seed) {
  check_bounds(low, high);
}

tensor::Shape RandomReplaceOp::infer_shape(
    std::span<const tensor::Shape> in) const {
  return unary_shape(in);
}

tensor::Tensor RandomReplaceOp::compute(
    std::span<const tensor::Tensor> in) const {
  tensor::Tensor y = in[0].clone();
  std::span<float> v = y.mutable_values();
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] < low_ || v[i] > high_ || std::isnan(v[i])) {
      util::Rng rng(util::derive_seed(seed_, i));
      v[i] = static_cast<float>(rng.uniform(low_, high_));
    }
  }
  return y;
}

ops::CompiledKernel RandomReplaceOp::blocked_kernel(
    const tensor::QScheme& scheme) const {
  const float low = low_, high = high_;
  const std::uint64_t seed = seed_;
  // The replacement draw is keyed by (seed, element index), so the fused
  // kernel stays deterministic under any block partitioning.
  return {[low, high, seed, scheme](std::span<const tensor::Tensor> in) {
            return fused_restrict(
                scheme, in[0], [low, high, seed](std::size_t i, float v) {
                  if (v < low || v > high || std::isnan(v)) {
                    util::Rng rng(util::derive_seed(seed, i));
                    return static_cast<float>(rng.uniform(low, high));
                  }
                  return v;
                });
          },
          true};
}

}  // namespace rangerpp::core

#include "core/range_profiler.hpp"

#include <algorithm>
#include <stdexcept>

namespace rangerpp::core {

namespace {

bool has_analytic_bound(ops::OpKind k, Bound& out) {
  switch (k) {
    case ops::OpKind::kTanh:
      out = {-1.0f, 1.0f};
      return true;
    case ops::OpKind::kSigmoid:
      out = {0.0f, 1.0f};
      return true;
    case ops::OpKind::kRelu6:
      out = {0.0f, 6.0f};
      return true;
    default:
      return false;
  }
}

}  // namespace

Bounds RangeProfile::bounds(double percentile) const {
  if (percentile <= 0.0 || percentile > 100.0)
    throw std::invalid_argument("RangeProfile::bounds: bad percentile");
  Bounds out;
  for (const auto& [name, stats] : layers_) {
    if (stats.analytic) {
      out.emplace(name, stats.analytic_bound);
      continue;
    }
    if (stats.range.count == 0) continue;
    Bound b;
    if (percentile >= 100.0) {
      b.low = stats.range.min_value;
      b.up = stats.range.max_value;
    } else {
      const auto sample = stats.reservoir.values();
      b.up = static_cast<float>(util::percentile(sample, percentile));
      // For non-negative activations (ReLU/ELU-with-positive-floor) the
      // observed minimum is kept; for signed ones take the symmetric
      // percentile of the low tail.
      if (stats.range.min_value >= 0.0f) {
        b.low = stats.range.min_value;
      } else {
        b.low =
            static_cast<float>(util::percentile(sample, 100.0 - percentile));
      }
    }
    out.emplace(name, b);
  }
  return out;
}

util::RunningRange RangeProfile::range_of(const std::string& name) const {
  const auto it = layers_.find(name);
  if (it == layers_.end())
    throw std::invalid_argument("RangeProfile: unknown layer '" + name + "'");
  return it->second.range;
}

RangeProfile RangeProfiler::profile(
    const graph::Graph& g, const std::vector<fi::Feeds>& samples) const {
  if (samples.empty())
    throw std::invalid_argument("RangeProfiler: no samples");
  RangeProfile prof;

  // Pre-create per-ACT-layer slots (including analytic ones).
  for (const graph::Node& n : g.nodes()) {
    if (!ops::is_activation(n.op->kind())) continue;
    Bound analytic;
    if (has_analytic_bound(n.op->kind(), analytic)) {
      RangeProfile::LayerStats stats{
          {}, util::Reservoir(1, options_.seed), true, analytic};
      prof.layers_.emplace(n.name, std::move(stats));
    } else {
      RangeProfile::LayerStats stats{
          {},
          util::Reservoir(options_.reservoir_capacity,
                          util::derive_seed(options_.seed,
                                            static_cast<std::uint64_t>(n.id))),
          false,
          {}};
      prof.layers_.emplace(n.name, std::move(stats));
    }
  }

  // One compiled plan + arena for the whole profiling stream: constants
  // are materialised once and the schedule is reused per sample.
  const graph::Executor exec({tensor::DType::kFloat32});
  const graph::ExecutionPlan plan(g, tensor::DType::kFloat32);
  graph::Arena arena;
  for (const fi::Feeds& feeds : samples) {
    exec.run(plan, feeds, arena,
             [&prof](const graph::Node& node, tensor::Tensor& out) {
               const auto it = prof.layers_.find(node.name);
               if (it == prof.layers_.end() || it->second.analytic) return;
               for (float v : out.values()) {
                 it->second.range.observe(v);
                 it->second.reservoir.observe(v);
               }
             });
  }
  return prof;
}

Bounds RangeProfiler::derive_bounds(
    const graph::Graph& g, const std::vector<fi::Feeds>& samples) const {
  return profile(g, samples).bounds(options_.percentile);
}

}  // namespace rangerpp::core

// Restriction bounds: per-activation-layer (low, up) pairs derived from
// profiling (paper §III-C step 1).  Keyed by node name so bounds derived on
// an unprotected graph apply to any graph that preserves names (the Ranger
// transform does).
#pragma once

#include <map>
#include <string>

namespace rangerpp::core {

struct Bound {
  float low = 0.0f;
  float up = 0.0f;
};

// Ordered map so iteration (e.g. in Fig 4's per-layer output) follows a
// stable order.
using Bounds = std::map<std::string, Bound>;

}  // namespace rangerpp::core

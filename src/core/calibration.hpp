// Post-training int8 calibration: turns the per-layer (low, up) bounds the
// RangeProfiler already derives (paper §III-C step 1) into per-node int8
// fixed-point formats.  This is the PTQ analogue of Ranger's own insight —
// the profiler knows each activation's realistic value range, so 8 bits of
// code space can be spent on that range instead of a one-size-fits-all
// Q4.3 layout.  Keyed by node name for the same reason Bounds is: formats
// derived on the unprotected graph apply to any graph that preserves
// names, including the Ranger-transformed one (inserted restrict nodes
// inherit their input's scheme at plan time).
#pragma once

#include <string>
#include <unordered_map>

#include "core/bounds.hpp"
#include "tensor/dtype.hpp"

namespace rangerpp::core {

using Int8Formats = std::unordered_map<std::string, tensor::FixedPointFormat>;

// One calibrated format per bounded node, via
// tensor::int8_format_for_range.  Deterministic in the bounds (and hence
// in whatever seed/inputs produced them), which is what lets int8
// campaigns stay shard/resume compatible.
Int8Formats int8_calibration(const Bounds& bounds);

}  // namespace rangerpp::core

#include "core/flops_profiler.hpp"

#include <map>
#include <string>
#include <vector>

#include "util/metrics.hpp"

namespace rangerpp::core {

FlopsReport profile_flops(const graph::Graph& g) {
  FlopsReport report;
  std::map<std::string, std::uint64_t> by_kind;
  const std::vector<tensor::Shape> shapes = g.infer_shapes();
  std::vector<tensor::Shape> in_shapes;
  for (const graph::Node& n : g.nodes()) {
    in_shapes.clear();
    for (graph::NodeId in : n.inputs)
      in_shapes.push_back(shapes[static_cast<std::size_t>(in)]);
    const std::uint64_t f = n.op->flops(in_shapes);
    report.total += f;
    by_kind[std::string(n.op->kind_name())] += f;
  }
  if (util::metrics::enabled()) {
    util::metrics::counter_add("flops.total", report.total);
    for (const auto& [kind, f] : by_kind)
      util::metrics::counter_add("flops." + kind, f);
  }
  return report;
}

double flops_overhead_pct(const graph::Graph& baseline,
                          const graph::Graph& with_ranger) {
  const std::uint64_t base = profile_flops(baseline).total;
  const std::uint64_t prot = profile_flops(with_ranger).total;
  if (base == 0) return 0.0;
  return 100.0 * (static_cast<double>(prot) - static_cast<double>(base)) /
         static_cast<double>(base);
}

}  // namespace rangerpp::core

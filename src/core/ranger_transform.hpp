// RangerTransform — the paper's Algorithm 1.
//
// Given restriction bounds for the activation layers (from RangeProfiler),
// produces a *new* graph in which:
//  * every profiled activation op is followed by a range-restriction op;
//  * the restriction extends through the bound-transparent operators that
//    consume restricted values — Max-Pool, Avg-Pool, Reshape/Flatten and
//    Concatenate (Algorithm 1 lines 5-8); Concat merges the bounds of its
//    restricted inputs as (min of lows, max of ups);
//  * all original node names are preserved, so fault sites planned on the
//    unprotected graph replay on the protected one.
//
// The transform uses Graph::import_with_remap — the analogue of the
// append-only TensorFlow graph duplication of the paper's implementation
// (§IV, Fig 3): existing nodes are never mutated; restriction operators are
// spliced between producers and consumers during the copy.
//
// Besides the paper's default clamp-to-bound restriction, the §VI-C design
// alternatives are implemented as policies:
//  * kClamp  — saturate out-of-bound values at the bound (Ranger);
//  * kZero   — reset out-of-bound values to 0 (Reagen et al., Minerva);
//  * kRandom — replace out-of-bound values with a uniform random value
//              inside [low, up].
#pragma once

#include <cstdint>

#include "core/bounds.hpp"
#include "graph/graph.hpp"
#include "graph/passes.hpp"

namespace rangerpp::core {

enum class RestrictionPolicy { kClamp, kZero, kRandom };

struct TransformOptions {
  RestrictionPolicy policy = RestrictionPolicy::kClamp;
  // Seed for the kRandom policy's replacement draws (deterministic per op).
  std::uint64_t seed = 1234;
  // Ablation switch: when false, only the activation ops themselves are
  // bounded (Algorithm 1 lines 3-4) and the extension to the following
  // Max-Pool/Avg-Pool/Reshape/Concat ops (lines 5-8) is skipped.  §III-C's
  // MaxPool example argues this extension is necessary; the
  // ablation_selective_restriction bench quantifies it.
  bool extend_to_transparent_ops = true;
};

struct TransformStats {
  std::size_t restriction_ops_inserted = 0;
  std::size_t activations_bounded = 0;
  std::size_t transparent_ops_bounded = 0;
  double elapsed_seconds = 0.0;  // Table III's "insertion time"
  // Memory overhead of Ranger = the stored bound pairs (Table IV text).
  std::size_t bound_values_stored() const {
    return 2 * restriction_ops_inserted;
  }
};

class RangerTransform {
 public:
  explicit RangerTransform(TransformOptions options = {})
      : options_(options) {}

  // Returns the protected graph.  `bounds` is keyed by activation node
  // name; activations without a bound are left unprotected (the paper's
  // "selective" restriction).
  graph::Graph apply(const graph::Graph& g, const Bounds& bounds) const;

  // Statistics of the most recent apply() call.
  const TransformStats& last_stats() const { return stats_; }

  // The suffix appended to restriction node names.
  static constexpr const char* kSuffix = "/ranger";

 private:
  TransformOptions options_;
  mutable TransformStats stats_;
};

// RangerTransform as a compiler pass (the "ranger_insert" stage): set
// graph::CompileOptions::ranger to compile a protected plan straight from
// the unprotected graph —
//
//   auto plan = graph::compile(g, {.ranger = core::ranger_pass(bounds)});
//
// replaces the historical three-step protect -> RangerTransform::apply ->
// ExecutionPlan dance.  The inserted restriction nodes are injectable
// (hence observable under the default Observe::kInjectable), so later
// rewrite passes never fold or fuse them away.
graph::PassPtr ranger_pass(Bounds bounds, TransformOptions options = {});

}  // namespace rangerpp::core

// FLOPs profiler: the platform-independent overhead metric of Table IV.
// Mirrors the TensorFlow profiler the paper used: per-op FLOP counts are
// summed over the graph given the declared input shapes.
//
// Per-kind accounting lives in the metrics registry (util/metrics.hpp),
// not in a bespoke side channel: when metrics are enabled, each call
// adds `flops.total` and `flops.<KindName>` (e.g. "flops.Conv2D")
// counters, so ablations read the same registry every other subsystem
// publishes to.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace rangerpp::core {

struct FlopsReport {
  std::uint64_t total = 0;
};

FlopsReport profile_flops(const graph::Graph& g);

// Relative overhead of `with_ranger` over `baseline` in percent.
double flops_overhead_pct(const graph::Graph& baseline,
                          const graph::Graph& with_ranger);

}  // namespace rangerpp::core

// FLOPs profiler: the platform-independent overhead metric of Table IV.
// Mirrors the TensorFlow profiler the paper used: per-op FLOP counts are
// summed over the graph given the declared input shapes.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "graph/graph.hpp"

namespace rangerpp::core {

struct FlopsReport {
  std::uint64_t total = 0;
  // Per op-kind totals, e.g. "Conv2D" -> FLOPs; useful for ablations.
  std::map<std::string, std::uint64_t> by_kind;
};

FlopsReport profile_flops(const graph::Graph& g);

// Relative overhead of `with_ranger` over `baseline` in percent.
double flops_overhead_pct(const graph::Graph& baseline,
                          const graph::Graph& with_ranger);

}  // namespace rangerpp::core

// Range profiler: derives restriction bounds for every activation layer by
// streaming training data through the model and recording the observed
// value distribution (paper §III-C step 1, §V-A "Deriving Restriction
// Bounds").
//
// Two bound choices are supported, matching the paper:
//  * the conservative default — the observed min/max (the "100th
//    percentile" configuration of §VI-A);
//  * percentile bounds (99.9 / 99 / 98 ...) that trade accuracy for
//    resilience (Fig 10 / Table V), computed from a per-layer reservoir
//    sample of the activation values.
//
// Functions with inherent bounds (Tanh: (-1,1), Sigmoid: (0,1)) get their
// analytic bounds and need no statistics.
#pragma once

#include <cstdint>
#include <vector>

#include "core/bounds.hpp"
#include "fi/campaign.hpp"  // Feeds
#include "graph/executor.hpp"
#include "util/stats.hpp"

namespace rangerpp::core {

struct ProfileOptions {
  // Percentile in (0, 100] used for the upper bound (and 100-q for the
  // lower bound of signed activations).  100 = exact observed extrema.
  double percentile = 100.0;
  // Reservoir capacity per layer for percentile estimation.
  std::size_t reservoir_capacity = 1 << 16;
  std::uint64_t seed = 7;
  // Profiling always runs in float32 (bounds describe the true value
  // distribution; quantisation is an execution-time concern).
};

// Per-layer profile retained so callers can re-derive bounds at several
// percentiles from one profiling pass (used by the Fig 10 sweep).
class RangeProfile {
 public:
  // Bounds at the configured percentile.
  Bounds bounds(double percentile = 100.0) const;

  // Observed extrema for one layer (tests / Fig 4).
  util::RunningRange range_of(const std::string& node_name) const;

  struct LayerStats {
    util::RunningRange range;
    util::Reservoir reservoir;
    bool analytic = false;  // Tanh/Sigmoid: bounds from the function itself
    Bound analytic_bound{};
  };
  const std::map<std::string, LayerStats>& layers() const { return layers_; }

 private:
  friend class RangeProfiler;
  std::map<std::string, LayerStats> layers_;
};

class RangeProfiler {
 public:
  explicit RangeProfiler(ProfileOptions options = {}) : options_(options) {}

  // Streams `samples` through `g` and accumulates per-ACT-layer statistics.
  RangeProfile profile(const graph::Graph& g,
                       const std::vector<fi::Feeds>& samples) const;

  // Convenience: profile + extract bounds at the configured percentile.
  Bounds derive_bounds(const graph::Graph& g,
                       const std::vector<fi::Feeds>& samples) const;

 private:
  ProfileOptions options_;
};

}  // namespace rangerpp::core

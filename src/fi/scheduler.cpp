#include "fi/scheduler.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "core/calibration.hpp"
#include "core/range_profiler.hpp"
#include "core/ranger_transform.hpp"
#include "fi/record_codec.hpp"
#include "util/metrics.hpp"
#include "util/parse.hpp"
#include "util/threadpool.hpp"
#include "util/trace.hpp"

namespace rangerpp::fi {

namespace {

// kill_after_ sentinel: no kill scheduled for this worker.
constexpr std::size_t kNoKill = static_cast<std::size_t>(-1);

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};

}  // namespace

std::string_view request_state_token(RequestState s) {
  switch (s) {
    case RequestState::kRunning: return "running";
    case RequestState::kDone: return "done";
    case RequestState::kCancelled: return "cancelled";
    case RequestState::kFailed: return "failed";
  }
  return "?";
}

// ---- Shared engine caches ---------------------------------------------------

// Everything requests share, keyed by everything that determines it.
// The map shape is guarded by `mu` (held only for find-or-insert); the
// expensive builds run outside it under per-entry once_flags, so two
// workers needing the same entry build it exactly once and entries for
// different keys build in parallel.  Entries are heap-allocated and
// never evicted, so returned references stay stable; built state is
// immutable, so post-build reads need no synchronisation.
//
// Build chains nest strictly goldens → executor → ranger → workload —
// a DAG in one direction — so nested call_once never deadlocks.
struct Scheduler::Engine {
  Engine(models::WorkloadCache* external, bool verify_plans)
      : verify_plans_(verify_plans), external_(external) {}

  models::WorkloadCache& workloads(std::uint64_t seed, std::size_t inputs) {
    if (external_ && external_->options().seed == seed &&
        external_->options().eval_inputs == inputs)
      return *external_;
    util::MutexLock lk(mu);
    std::unique_ptr<models::WorkloadCache>& slot = caches_[{seed, inputs}];
    if (!slot) {
      models::WorkloadOptions wo;
      wo.seed = seed;
      wo.eval_inputs = inputs;
      slot = std::make_unique<models::WorkloadCache>(wo);
    }
    return *slot;
  }

  struct RangerEntry {
    std::once_flag built;
    core::Bounds bounds;
    graph::Graph protected_graph;
  };

  RangerEntry& ranger(const SuiteSpec& spec, models::ModelId model,
                      ops::OpKind act) {
    RangerEntry* ep;
    {
      util::MutexLock lk(mu);
      ep = slot(ranger_, std::make_tuple(spec.seed, spec.inputs,
                                         static_cast<int>(model),
                                         static_cast<int>(act)));
    }
    RangerEntry& e = *ep;
    std::call_once(e.built, [&] {
      const models::Workload& w =
          workloads(spec.seed, spec.inputs).get(model, act);
      e.bounds = core::RangeProfiler{}.derive_bounds(w.graph,
                                                     w.profile_feeds);
      e.protected_graph = core::RangerTransform{}.apply(w.graph, e.bounds);
    });
    return e;
  }

  const TrialExecutor& executor(const SuiteSpec& spec, const SuiteCell& cell,
                                const graph::Graph& g,
                                const std::vector<Feeds>& inputs,
                                bool is_protected, unsigned workers) {
    ExecEntry* ep;
    {
      util::MutexLock lk(mu);
      ep = slot(executors_, std::make_tuple(
          spec.seed, spec.inputs, static_cast<int>(cell.model),
          static_cast<int>(cell.act), is_protected ? 1 : 0,
          static_cast<int>(cell.dtype)));
    }
    ExecEntry& e = *ep;
    std::call_once(e.built, [&] {
      // Only (graph, dtype, backend, batch) reach the executor — one
      // compiled executor serves every cell and every request of this
      // (seed, inputs, model, act, variant, dtype).  threads=1: arenas
      // are pinned per scheduler worker via RunContext::worker_base, and
      // construction already runs on a ScopedPoolWorker thread.
      CampaignConfig ec;
      ec.dtype = cell.dtype;
      ec.threads = 1;
      // The per-cell static verification point: every distinct compiled
      // plan is proven sound here, once, before any trial runs.  A
      // VerifyReport failure throws out of the call_once; the slice's
      // catch settles the request kFailed with the diagnostic.
      ec.verify_plan = verify_plans_;
      if (cell.dtype == tensor::DType::kInt8)
        ec.int8_formats =
            core::int8_calibration(ranger(spec, cell.model, cell.act).bounds);
      e.exec = std::make_unique<TrialExecutor>(g, ec, inputs, workers);
    });
    return *e.exec;
  }

  const std::vector<tensor::Tensor>& unprotected_goldens(
      const SuiteSpec& spec, const SuiteCell& cell,
      const models::Workload& w, unsigned workers) {
    GoldenEntry* ep;
    {
      util::MutexLock lk(mu);
      ep = slot(goldens_, std::make_tuple(
          spec.seed, spec.inputs, static_cast<int>(cell.model),
          static_cast<int>(cell.act), static_cast<int>(cell.dtype)));
    }
    GoldenEntry& e = *ep;
    std::call_once(e.built, [&] {
      const TrialExecutor& ex = executor(spec, cell, w.graph, w.eval_feeds,
                                         /*is_protected=*/false, workers);
      e.goldens.reserve(w.eval_feeds.size());
      for (std::size_t i = 0; i < w.eval_feeds.size(); ++i)
        e.goldens.push_back(ex.golden_output(i));
    });
    return e.goldens;
  }

  util::Mutex mu;  // guards the maps' shape, never a build

 private:
  // Find-or-insert under `mu` (held by the caller so the guarded map
  // can be named at the call site at all — passing it unlocked would
  // itself be a thread-safety error).  Returned entries are stable:
  // heap-allocated, never evicted.
  template <typename Map, typename Key>
  typename Map::mapped_type::element_type* slot(Map& map, const Key& key)
      RANGERPP_REQUIRES(mu) {
    typename Map::mapped_type& s = map[key];
    if (!s) s = std::make_unique<typename Map::mapped_type::element_type>();
    return s.get();
  }

  struct ExecEntry {
    std::once_flag built;
    std::unique_ptr<TrialExecutor> exec;
  };
  struct GoldenEntry {
    std::once_flag built;
    std::vector<tensor::Tensor> goldens;
  };

  const bool verify_plans_;
  models::WorkloadCache* external_ = nullptr;
  std::map<std::pair<std::uint64_t, std::size_t>,
           std::unique_ptr<models::WorkloadCache>>
      caches_ RANGERPP_GUARDED_BY(mu);
  std::map<std::tuple<std::uint64_t, std::size_t, int, int>,
           std::unique_ptr<RangerEntry>>
      ranger_ RANGERPP_GUARDED_BY(mu);
  std::map<std::tuple<std::uint64_t, std::size_t, int, int, int, int>,
           std::unique_ptr<ExecEntry>>
      executors_ RANGERPP_GUARDED_BY(mu);
  std::map<std::tuple<std::uint64_t, std::size_t, int, int, int>,
           std::unique_ptr<GoldenEntry>>
      goldens_ RANGERPP_GUARDED_BY(mu);
};

// ---- Per-request state ------------------------------------------------------

struct Scheduler::Unit {
  Request* req = nullptr;
  std::size_t cell_index = 0;
  std::size_t partition = 0;
  // Records of this partition already delivered to the sink; records a
  // dying worker executed but never streamed stay below this mark, so
  // the adopting worker streams them straight from the checkpoint.
  std::size_t streamed = 0;
};

struct Scheduler::Request {
  // Immutable after submit() publishes the request: id, plan, sink (the
  // *field*; calls through it serialise under `mu`), and the shape of
  // `cells` (its entries' mutable state is guarded individually).
  std::uint64_t id = 0;
  SuitePlan plan;
  RecordSink sink;

  util::Mutex mu;  // also serialises the sink
  util::CondVar cv;
  // Atomic so readers that must not block on a request's sink (submit's
  // duplicate-name check, status over many requests) can read it
  // without `mu`; writers still settle it under `mu` + cv notify.
  std::atomic<RequestState> state{RequestState::kRunning};
  // cancelled is also set on failure: pending units skip at pickup.
  bool cancelled RANGERPP_GUARDED_BY(mu) = false;
  std::string error RANGERPP_GUARDED_BY(mu);
  std::size_t outstanding RANGERPP_GUARDED_BY(mu) = 0;  // unsettled units
  std::size_t streamed RANGERPP_GUARDED_BY(mu) = 0;  // across all cells
  // Streamed records per cell (unordered across a cell's partitions).
  // Lives here, not in CellState, so its guard is expressible: the
  // analysis matches capability expressions syntactically and cannot
  // equate an inner struct's back-pointer with `mu`.
  std::vector<std::vector<TrialRecord>> cell_records RANGERPP_GUARDED_BY(mu);
  std::vector<std::unique_ptr<Unit>> units RANGERPP_GUARDED_BY(mu);
  bool released RANGERPP_GUARDED_BY(mu) = false;  // records/units dropped
  util::Timer submitted;  // settle latency (sched.settle_ms histogram)

  struct CellState {
    // header is published by call_once, not `mu`: built at most once
    // inside header_once, readable without locks after header_ready.
    std::once_flag header_once;
    std::atomic<bool> header_ready{false};
    CheckpointHeader header;  // export-form (shard 0/1)
  };
  std::vector<std::unique_ptr<CellState>> cells;
};

// ---- Scheduler --------------------------------------------------------------

Scheduler::Scheduler(SchedulerConfig config,
                     models::WorkloadCache* shared_workloads)
    : config_(std::move(config)) {
  if (config_.partitions_per_cell == 0) config_.partitions_per_cell = 1;
  workers_ = config_.workers ? config_.workers
                             : util::default_thread_count();
  engine_ = std::make_unique<Engine>(shared_workloads, config_.verify_plans);
  queues_.resize(workers_);
  kill_after_.reserve(workers_);
  busy_us_.reserve(workers_);
  for (unsigned w = 0; w < workers_; ++w) {
    kill_after_.push_back(
        std::make_unique<std::atomic<std::size_t>>(kNoKill));
    busy_us_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
  threads_.reserve(workers_);
  for (unsigned w = 0; w < workers_; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

Scheduler::~Scheduler() { shutdown(); }

std::uint64_t Scheduler::submit(SuiteSpec spec, RecordSink sink) {
  {
    util::MutexLock lk(queue_mu_);
    if (shutdown_)
      throw std::runtime_error("Scheduler: submit after shutdown");
  }
  if (spec.shard_count != 1 || spec.shard_index != 0)
    throw std::invalid_argument(
        "Scheduler: submit unsharded specs (shard 0/1) — the scheduler "
        "owns partitioning");
  // Scheduler concerns, not request concerns: slices/checkpoints belong
  // to the daemon config, and each slice runs single-threaded on its
  // scheduler worker.
  spec.checkpoint_dir.clear();
  spec.max_new_trials = 0;

  auto req = std::make_shared<Request>();
  req->plan = compile_suite(spec);  // throws on a bad spec
  req->sink = std::move(sink);
  // Nothing shares the request yet, but the guarded fields are guarded:
  // populate them under the (uncontended) lock rather than poke a hole
  // in the analysis for the pre-publication window.
  std::vector<Unit*> unit_ptrs;
  {
    util::MutexLock lk(req->mu);
    req->cell_records.resize(req->plan.cells.size());
    for (std::size_t ci = 0; ci < req->plan.cells.size(); ++ci) {
      req->cells.push_back(std::make_unique<Request::CellState>());
      for (std::size_t p = 0; p < config_.partitions_per_cell; ++p) {
        auto u = std::make_unique<Unit>();
        u->req = req.get();
        u->cell_index = ci;
        u->partition = p;
        req->units.push_back(std::move(u));
      }
    }
    req->outstanding = req->units.size();
    unit_ptrs.reserve(req->units.size());
    for (auto& u : req->units) unit_ptrs.push_back(u.get());
  }

  Request* raw = nullptr;
  {
    util::MutexLock lk(requests_mu_);
    for (auto& [id, other] : requests_)
      if (other->state.load(std::memory_order_acquire) ==
              RequestState::kRunning &&
          other->plan.spec.name == req->plan.spec.name)
        throw std::invalid_argument(
            "Scheduler: a request named '" + req->plan.spec.name +
            "' is already running (names key checkpoint files)");
    req->id = next_id_++;
    raw = req.get();
    requests_[raw->id] = std::move(req);
    reap_settled();
  }

  if (!config_.checkpoint_dir.empty())
    std::filesystem::create_directories(config_.checkpoint_dir);

  bool lost_shutdown_race = false;
  {
    util::MutexLock lk(queue_mu_);
    // shutdown() may have won the race since the entry check: the
    // workers are gone (or going), so enqueued units would never settle
    // and a wait() on this id would hang forever.  Refuse instead.
    if (shutdown_) {
      lost_shutdown_race = true;
    } else {
      // Round-robin the units across worker deques; stealing rebalances
      // whatever this initial placement gets wrong.
      std::size_t w = 0;
      for (Unit* u : unit_ptrs) queues_[w++ % workers_].push_back(u);
    }
  }
  if (lost_shutdown_race) {
    // Settle the already-registered request ourselves: shutdown()'s own
    // kFailed sweep may have run before the insert above, and a running
    // request is never reaped.
    {
      util::MutexLock lk(raw->mu);
      if (raw->state == RequestState::kRunning) {
        raw->state = RequestState::kFailed;
        raw->error = "scheduler shut down before the request started";
        raw->cv.notify_all();
      }
    }
    throw std::runtime_error("Scheduler: submit after shutdown");
  }
  queue_cv_.notify_all();
  return raw->id;
}

std::shared_ptr<Scheduler::Request> Scheduler::find_request(
    std::uint64_t id) const {
  util::MutexLock lk(requests_mu_);
  const auto it = requests_.find(id);
  return it == requests_.end() ? nullptr : it->second;
}

// Oldest-first eviction of settled requests beyond the retention cap —
// the bound on resident memory (and on the duplicate-name scan and
// status_all walks).  Holders of the shared_ptr (a concurrent wait or
// export) keep the request alive past the erase; a settled request has
// no units left in any worker deque, so nothing dangles.
void Scheduler::reap_settled() {
  std::size_t settled = 0;
  for (const auto& [id, req] : requests_)
    if (req->state.load(std::memory_order_acquire) != RequestState::kRunning)
      ++settled;
  for (auto it = requests_.begin();
       settled > config_.settled_retention && it != requests_.end();) {
    if (it->second->state.load(std::memory_order_acquire) ==
        RequestState::kRunning) {
      ++it;
      continue;
    }
    it = requests_.erase(it);
    --settled;
  }
}

RequestStatus Scheduler::status_of(Request& req) const {
  util::MutexLock lk(req.mu);
  RequestStatus s;
  s.id = req.id;
  s.name = req.plan.spec.name;
  s.state = req.state;
  s.cells = req.plan.cells.size();
  s.planned_trials = req.plan.total_trials;
  s.streamed_trials = req.streamed;
  s.error = req.error;
  return s;
}

std::optional<RequestStatus> Scheduler::status(std::uint64_t id) const {
  const std::shared_ptr<Request> req = find_request(id);
  if (!req) return std::nullopt;
  return status_of(*req);
}

std::vector<RequestStatus> Scheduler::status_all() const {
  std::vector<RequestStatus> out;
  util::MutexLock lk(requests_mu_);
  out.reserve(requests_.size());
  for (auto& [id, req] : requests_) out.push_back(status_of(*req));
  return out;
}

bool Scheduler::cancel(std::uint64_t id) {
  const std::shared_ptr<Request> req = find_request(id);
  if (!req) return false;
  util::MutexLock lk(req->mu);
  if (req->state != RequestState::kRunning || req->cancelled) return false;
  req->cancelled = true;
  return true;
}

SuiteResult Scheduler::wait(std::uint64_t id) {
  const std::shared_ptr<Request> req = find_request(id);
  if (!req) throw std::invalid_argument("Scheduler: unknown request id");
  {
    util::MutexLock lk(req->mu);
    while (req->state == RequestState::kRunning) req->cv.wait(lk);
    if (req->state == RequestState::kFailed)
      throw std::runtime_error("Scheduler: request '" + req->plan.spec.name +
                               "' failed: " + req->error);
  }
  SuiteResult out;
  out.plan = req->plan;
  out.cells.reserve(req->plan.cells.size());
  for (std::size_t ci = 0; ci < req->plan.cells.size(); ++ci) {
    const SuiteCell& cell = req->plan.cells[ci];
    // The header via ensure_cell_header, never cs.header directly: the
    // call_once is the publication point, and a cell that never ran
    // (cancel) gets its header built here — same as the export path.
    const CheckpointHeader& header = ensure_cell_header(*req, ci);
    std::vector<TrialRecord> records;
    {
      util::MutexLock lk(req->mu);
      records = req->cell_records[ci];
    }
    out.cells.push_back(
        {cell, build_report(records,
                            models::default_judges(cell.model).size(),
                            cell.total_trials,
                            parse_strata_weights(header.strata_weights))});
  }
  return out;
}

CheckpointHeader Scheduler::cell_header(std::uint64_t id,
                                        std::size_t cell_index) const {
  const std::shared_ptr<Request> req = find_request(id);
  if (!req) throw std::invalid_argument("Scheduler: unknown request id");
  if (cell_index >= req->cells.size())
    throw std::invalid_argument("Scheduler: cell index out of range");
  const Request::CellState& cs = *req->cells[cell_index];
  if (!cs.header_ready.load(std::memory_order_acquire))
    throw std::runtime_error(
        "Scheduler: cell has not run yet — header unavailable");
  return cs.header;
}

std::vector<std::string> Scheduler::export_request_jsonl(
    std::uint64_t id, const std::string& dir) {
  const std::shared_ptr<Request> req = find_request(id);
  if (!req) throw std::invalid_argument("Scheduler: unknown request id");
  {
    util::MutexLock lk(req->mu);
    if (req->state == RequestState::kRunning)
      throw std::runtime_error(
          "Scheduler: export requires a settled request (wait first)");
    if (req->released)
      throw std::runtime_error(
          "Scheduler: request '" + req->plan.spec.name +
          "' was released — its records are gone (checkpoints, if "
          "configured, remain resumable)");
  }
  std::filesystem::create_directories(dir);
  std::vector<std::string> paths;
  paths.reserve(req->plan.cells.size());
  for (std::size_t ci = 0; ci < req->plan.cells.size(); ++ci) {
    const SuiteCell& cell = req->plan.cells[ci];
    const CheckpointHeader& header = ensure_cell_header(*req, ci);
    std::vector<TrialRecord> records;
    {
      util::MutexLock lk(req->mu);
      // Re-checked per cell: a concurrent release() between the entry
      // check and this copy empties the buffers, and exporting those as
      // if they were the records would silently write truncated files.
      if (req->released)
        throw std::runtime_error(
            "Scheduler: request '" + req->plan.spec.name +
            "' was released mid-export — its records are gone");
      records = req->cell_records[ci];
    }
    records = sort_unique_records(std::move(records));
    const std::string text = to_jsonl(header, records);
    const std::string path =
        (std::filesystem::path(dir) /
         (req->plan.spec.name + "." + cell.id + ".s0of1.jsonl"))
            .string();
    std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "w"));
    if (!f || std::fwrite(text.data(), 1, text.size(), f.get()) !=
                  text.size())
      throw std::runtime_error("Scheduler: cannot write " + path);
    paths.push_back(path);
  }
  return paths;
}

bool Scheduler::release(std::uint64_t id) {
  const std::shared_ptr<Request> req = find_request(id);
  if (!req) return false;
  // Atomic state check before touching req->mu: a running request's mu
  // may be held across a (possibly slow) sink call, and release must
  // refuse, not block.  Settling is one-way, so a settled answer here
  // stays settled under the lock below.
  if (req->state.load(std::memory_order_acquire) == RequestState::kRunning)
    return false;
  util::MutexLock lk(req->mu);
  req->released = true;
  // A settled request has settled every unit, so no worker deque still
  // points into `units` — dropping them (and the buffered records) is
  // safe.  Status counters stay behind for history queries.
  for (auto& recs : req->cell_records) {
    recs.clear();
    recs.shrink_to_fit();
  }
  req->units.clear();
  return true;
}

void Scheduler::kill_worker_after(unsigned worker, std::size_t slices) {
  if (worker >= workers_)
    throw std::invalid_argument("Scheduler: worker index out of range");
  if (slices == kNoKill) --slices;
  kill_after_[worker]->store(slices, std::memory_order_relaxed);
}

void Scheduler::shutdown() {
  {
    util::MutexLock lk(queue_mu_);
    shutdown_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : threads_)
    if (t.joinable()) t.join();
  util::MutexLock lk(requests_mu_);
  for (auto& [id, req] : requests_) {
    util::MutexLock lk2(req->mu);
    if (req->state != RequestState::kRunning) continue;
    req->state = RequestState::kFailed;
    if (req->error.empty())
      req->error =
          "scheduler shut down before the request completed (checkpoints "
          "remain resumable)";
    req->cv.notify_all();
  }
}

// ---- Worker loop ------------------------------------------------------------

Scheduler::Unit* Scheduler::next_unit(unsigned w) {
  util::MutexLock lk(queue_mu_);
  for (;;) {
    if (shutdown_) return nullptr;
    if (!queues_[w].empty()) {
      Unit* u = queues_[w].front();
      queues_[w].pop_front();
      return u;
    }
    // Steal from the tail of the first non-empty sibling deque — also
    // how survivors drain a dead worker's queue.
    for (unsigned i = 1; i < workers_; ++i) {
      std::deque<Unit*>& q = queues_[(w + i) % workers_];
      if (q.empty()) continue;
      Unit* u = q.back();
      q.pop_back();
      steals_.fetch_add(1, std::memory_order_relaxed);
      util::metrics::counter_add("sched.steals");
      return u;
    }
    queue_cv_.wait(lk);
  }
}

void Scheduler::enqueue(Unit* u, unsigned hint) {
  {
    util::MutexLock lk(queue_mu_);
    queues_[hint % workers_].push_back(u);
  }
  queue_cv_.notify_all();
}

void Scheduler::worker_loop(unsigned w) {
  // Kernel-level parallel_for calls issued from runner slices run inline
  // on this thread — the scheduler owns the cores.
  util::ScopedPoolWorker pool_mark;
  util::trace::set_thread_name("sched.worker." + std::to_string(w));
  for (;;) {
    Unit* u = next_unit(w);
    if (!u) return;
    Request& req = *u->req;

    bool skip = false;
    {
      util::MutexLock lk(req.mu);
      skip = req.cancelled;
    }
    if (skip) {
      // Dropped at pickup; the unit's checkpoint (if any) stays
      // resumable for a future submission of the same spec.
      settle_unit(u);
      continue;
    }

    std::size_t kill = kill_after_[w]->load(std::memory_order_relaxed);
    if (kill == 0) {  // die before touching the unit
      enqueue(u, w + 1);
      return;
    }
    const bool die = kill != kNoKill && kill == 1;
    if (kill != kNoKill)
      kill_after_[w]->store(kill - 1, std::memory_order_relaxed);

    try {
      util::Timer busy;
      const bool finished = run_unit_slice(w, *u, /*suppress_stream=*/die);
      busy_us_[w]->fetch_add(
          static_cast<std::uint64_t>(busy.elapsed_seconds() * 1e6),
          std::memory_order_relaxed);
      slices_.fetch_add(1, std::memory_order_relaxed);
      util::metrics::counter_add("sched.slices");
      if (die) {
        // The slice's records made it to the checkpoint but not to the
        // stream — exactly a worker killed mid-handoff.  Hand the unit
        // to the survivors; their resume streams past u->streamed.
        enqueue(u, w + 1);
        return;
      }
      if (finished)
        settle_unit(u);
      else
        enqueue(u, w);
    } catch (const std::exception& e) {
      fail_request(req, e.what());
      settle_unit(u);
    }
  }
}

void Scheduler::settle_unit(Unit* u) {
  Request& req = *u->req;
  util::MutexLock lk(req.mu);
  --req.outstanding;
  if (req.outstanding == 0 && req.state == RequestState::kRunning) {
    req.state = !req.error.empty() ? RequestState::kFailed
                : req.cancelled   ? RequestState::kCancelled
                                  : RequestState::kDone;
    util::metrics::observe_ms("sched.settle_ms", req.submitted.elapsed_ms());
    req.cv.notify_all();
  }
}

void Scheduler::fail_request(Request& req, const std::string& error) {
  util::MutexLock lk(req.mu);
  if (req.error.empty()) req.error = error;
  req.cancelled = true;  // pending units skip at pickup
}

const CheckpointHeader& Scheduler::ensure_cell_header(Request& req,
                                                      std::size_t ci) {
  Request::CellState& cs = *req.cells[ci];
  std::call_once(cs.header_once, [&] {
    const SuiteSpec& spec = req.plan.spec;
    const SuiteCell& cell = req.plan.cells[ci];
    const models::Workload& w =
        engine_->workloads(spec.seed, spec.inputs).get(cell.model, cell.act);
    const graph::Graph* plan_g = &w.graph;
    if (cell.technique == Technique::kRanger)
      plan_g = &engine_->ranger(spec, cell.model, cell.act).protected_graph;
    RunnerConfig hc = cell_runner_config(spec, cell);
    hc.shard_index = 0;
    hc.shard_count = 1;
    CheckpointHeader h = CampaignRunner(hc).make_header(
        spec.inputs, models::default_judges(cell.model).size());
    const TrialPlanner planner(*plan_g, hc.campaign, spec.inputs,
                               hc.stratified);
    std::map<std::string, double> weights;
    for (std::size_t s = 0; s < planner.strata_count(); ++s)
      weights[planner.stratum_key(s)] = planner.stratum_weight(s);
    h.strata_weights = format_strata_weights(weights);
    cs.header = std::move(h);
  });
  cs.header_ready.store(true, std::memory_order_release);
  return cs.header;
}

bool Scheduler::run_unit_slice(unsigned w, Unit& u, bool suppress_stream) {
  Request& req = *u.req;
  const SuiteSpec& spec = req.plan.spec;
  const SuiteCell& cell = req.plan.cells[u.cell_index];
  Engine& eng = *engine_;

  util::trace::Span span("sched.slice");
  span.arg("request", req.id);
  span.arg("cell", u.cell_index);
  span.arg("partition", u.partition);

  const models::Workload& wl =
      eng.workloads(spec.seed, spec.inputs).get(cell.model, cell.act);
  if (wl.eval_feeds.size() != spec.inputs)
    throw std::runtime_error(
        "Scheduler: workload produced " +
        std::to_string(wl.eval_feeds.size()) + " eval inputs for cell " +
        cell.id + ", spec expects " + std::to_string(spec.inputs));

  const bool is_protected = cell.technique != Technique::kUnprotected;
  const graph::Graph* exec_g = &wl.graph;
  const graph::Graph* plan_g = &wl.graph;
  if (is_protected) {
    exec_g = &eng.ranger(spec, cell.model, cell.act).protected_graph;
    if (cell.technique == Technique::kRanger) plan_g = exec_g;
  }

  RunContext ctx;
  ctx.plan_graph = plan_g;
  ctx.exec_graph = exec_g;
  ctx.executor =
      &eng.executor(spec, cell, *exec_g, wl.eval_feeds, is_protected,
                    workers_);
  if (cell.technique == Technique::kRangerPaired)
    ctx.judge_golden = &eng.unprotected_goldens(spec, cell, wl, workers_);
  ctx.worker_base = w;  // pin this slice to this worker's arena

  RunnerConfig rc = cell_runner_config(spec, cell);
  rc.campaign.threads = 1;  // the scheduler pool IS the parallelism
  rc.shard_index = u.partition;
  rc.shard_count = config_.partitions_per_cell;
  // In-memory units must run whole: a slice boundary without a
  // checkpoint would forget its records (see SchedulerConfig).
  rc.max_new_trials =
      config_.checkpoint_dir.empty() ? 0 : config_.slice_trials;
  if (!config_.checkpoint_dir.empty())
    rc.checkpoint_path =
        (std::filesystem::path(config_.checkpoint_dir) /
         (spec.name + "." + cell.id + ".s" + std::to_string(u.partition) +
          "of" + std::to_string(config_.partitions_per_cell) + ".rcp"))
            .string();

  const CampaignRunner runner(rc);
  const CampaignReport report =
      runner.run(ctx, wl.eval_feeds, models::default_judges(cell.model));

  // Complete when every partition trial ran — or when a slice made no
  // progress (early stop tripped, or a resumed checkpoint already
  // covered everything new): requeueing such a unit would spin forever.
  const std::size_t prev = u.streamed;
  const bool finished =
      report.executed() >= report.planned || report.records.size() == prev;
  if (suppress_stream) return finished;

  if (report.records.size() > prev) {
    // report.records is ascending and every slice appends strictly later
    // trials of this partition, so the already-streamed records are
    // exactly the prefix [0, prev).
    const CheckpointHeader& header = ensure_cell_header(req, u.cell_index);
    std::vector<TrialRecord> fresh(
        report.records.begin() + static_cast<std::ptrdiff_t>(prev),
        report.records.end());
    util::MutexLock lk(req.mu);
    if (req.sink) req.sink(u.cell_index, header, fresh);
    std::vector<TrialRecord>& recs = req.cell_records[u.cell_index];
    recs.insert(recs.end(), std::make_move_iterator(fresh.begin()),
                std::make_move_iterator(fresh.end()));
    req.streamed += fresh.size();
    // Streamed position, not raw execution: a suppressed (dying) slice's
    // records are counted when the adopting worker re-streams them, so
    // the figure stays monotone and matches the client-visible stream.
    trials_executed_.fetch_add(fresh.size(), std::memory_order_relaxed);
  }
  u.streamed = report.records.size();
  return finished;
}

// ---- Live statistics --------------------------------------------------------

std::string Scheduler::stats_json() {
  const auto num = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return std::string(buf);
  };
  const double up_s = uptime_.elapsed_seconds();
  const double up_us = up_s * 1e6;
  const std::uint64_t trials =
      trials_executed_.load(std::memory_order_relaxed);

  std::string out = "{";
  out += "\"workers\": " + std::to_string(workers_);
  out += ", \"uptime_s\": " + num(up_s);
  out += ", \"slices\": " +
         std::to_string(slices_.load(std::memory_order_relaxed));
  out += ", \"steals\": " +
         std::to_string(steals_.load(std::memory_order_relaxed));
  out += ", \"trials_streamed\": " + std::to_string(trials);
  out += ", \"trials_per_sec\": " +
         num(up_s > 0.0 ? static_cast<double>(trials) / up_s : 0.0);
  out += ", \"worker_busy_fraction\": [";
  for (unsigned w = 0; w < workers_; ++w) {
    if (w) out += ", ";
    const double busy =
        static_cast<double>(busy_us_[w]->load(std::memory_order_relaxed));
    out += num(up_us > 0.0 ? std::min(1.0, busy / up_us) : 0.0);
  }
  out += "]";
  {
    util::MutexLock lk(queue_mu_);
    out += ", \"queue_depths\": [";
    for (unsigned w = 0; w < workers_; ++w) {
      if (w) out += ", ";
      out += std::to_string(queues_[w].size());
    }
    out += "]";
  }
  std::size_t running = 0, done = 0, cancelled = 0, failed = 0;
  {
    // requests_mu_ → req->mu is the established order (see shutdown()).
    util::MutexLock lk(requests_mu_);
    for (const auto& [id, req] : requests_) {
      switch (req->state.load(std::memory_order_acquire)) {
        case RequestState::kRunning: ++running; break;
        case RequestState::kDone: ++done; break;
        case RequestState::kCancelled: ++cancelled; break;
        case RequestState::kFailed: ++failed; break;
      }
    }
  }
  out += ", \"requests\": {\"running\": " + std::to_string(running) +
         ", \"done\": " + std::to_string(done) +
         ", \"cancelled\": " + std::to_string(cancelled) +
         ", \"failed\": " + std::to_string(failed) + "}";
  if (util::metrics::enabled()) {
    std::string m = util::metrics::snapshot_json();
    while (!m.empty() && m.back() == '\n') m.pop_back();
    out += ", \"metrics\": " + m;
  } else {
    out += ", \"metrics\": null";
  }
  out += "}\n";
  return out;
}

// ---- Request wire format ----------------------------------------------------

namespace {

[[noreturn]] void bad_spec(const std::string& what) {
  throw std::invalid_argument("parse_suite_spec: " + what);
}

template <typename T, typename TokenFn>
std::string join_tokens(const std::vector<T>& values, TokenFn token) {
  std::string out;
  for (const T& v : values) {
    if (!out.empty()) out += ',';
    out += std::string(token(v));
  }
  return out;
}

// Splits a comma-separated axis; rejects empty items ("a,,b") so a
// mangled request fails loudly instead of silently shrinking the grid.
std::vector<std::string> split_axis(std::string_view value,
                                    const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = value.find(',', start);
    const std::string_view item =
        value.substr(start, comma == std::string_view::npos
                                ? std::string_view::npos
                                : comma - start);
    if (item.empty()) bad_spec("empty item in '" + line + "'");
    out.emplace_back(item);
    if (comma == std::string_view::npos) return out;
    start = comma + 1;
  }
}

std::uint64_t parse_spec_u64(std::string_view value,
                             const std::string& line) {
  std::uint64_t v = 0;
  if (!util::parse_u64(std::string(value).c_str(), v))
    bad_spec("bad number in '" + line + "'");
  return v;
}

}  // namespace

std::string serialize_suite_spec(const SuiteSpec& spec) {
  std::string out;
  const auto line = [&out](std::string_view key, std::string value) {
    out += key;
    out += '=';
    out += value;
    out += '\n';
  };
  line("name", spec.name);
  line("models", join_tokens(spec.models, [](models::ModelId m) {
         return models::model_token(m);
       }));
  line("acts", join_tokens(spec.acts, act_token));
  line("dtypes", join_tokens(spec.dtypes, dtype_token));
  line("faults", join_tokens(spec.faults, fault_spec_token));
  line("techniques", join_tokens(spec.techniques, technique_token));
  line("trials", std::to_string(spec.trials_small));
  line("trials_divisor", std::to_string(spec.trials_divisor));
  line("inputs", std::to_string(spec.inputs));
  line("seed", std::to_string(spec.seed));
  line("check_every", std::to_string(spec.check_every));
  if (spec.target_half_width_pct != 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", spec.target_half_width_pct);
    line("target_ci", buf);
  }
  return out;
}

SuiteSpec parse_suite_spec(std::string_view text) {
  SuiteSpec spec;
  spec.models.clear();
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view raw = text.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos
                                          : nl - pos);
    pos = nl == std::string_view::npos ? text.size() : nl + 1;
    if (raw.empty()) continue;
    const std::string line(raw);
    const std::size_t eq = raw.find('=');
    if (eq == std::string_view::npos)
      bad_spec("expected key=value, got '" + line + "'");
    const std::string_view key = raw.substr(0, eq);
    const std::string_view value = raw.substr(eq + 1);
    if (key == "name") {
      spec.name = std::string(value);
    } else if (key == "models") {
      spec.models.clear();
      for (const std::string& item : split_axis(value, line)) {
        const auto m = models::model_from_token(item);
        if (!m) bad_spec("unknown model '" + item + "'");
        spec.models.push_back(*m);
      }
    } else if (key == "acts") {
      spec.acts.clear();
      for (const std::string& item : split_axis(value, line)) {
        const auto a = act_from_token(item);
        if (!a) bad_spec("unknown act '" + item + "'");
        spec.acts.push_back(*a);
      }
    } else if (key == "dtypes") {
      spec.dtypes.clear();
      for (const std::string& item : split_axis(value, line)) {
        const auto d = dtype_from_token(item);
        if (!d) bad_spec("unknown dtype '" + item + "'");
        spec.dtypes.push_back(*d);
      }
    } else if (key == "faults") {
      spec.faults.clear();
      for (const std::string& item : split_axis(value, line)) {
        const auto f = fault_spec_from_token(item);
        if (!f) bad_spec("bad fault model '" + item + "'");
        spec.faults.push_back(*f);
      }
    } else if (key == "techniques") {
      spec.techniques.clear();
      for (const std::string& item : split_axis(value, line)) {
        const auto t = technique_from_token(item);
        if (!t) bad_spec("unknown technique '" + item + "'");
        spec.techniques.push_back(*t);
      }
    } else if (key == "trials") {
      spec.trials_small = parse_spec_u64(value, line);
    } else if (key == "trials_divisor") {
      spec.trials_divisor = parse_spec_u64(value, line);
    } else if (key == "inputs") {
      spec.inputs = parse_spec_u64(value, line);
    } else if (key == "seed") {
      spec.seed = parse_spec_u64(value, line);
    } else if (key == "check_every") {
      spec.check_every = parse_spec_u64(value, line);
    } else if (key == "target_ci") {
      double v = 0.0;
      if (!util::parse_f64(std::string(value).c_str(), v) || v < 0.0)
        bad_spec("bad number in '" + line + "'");
      spec.target_half_width_pct = v;
    } else {
      bad_spec("unknown key '" + std::string(key) + "'");
    }
  }
  return spec;
}

}  // namespace rangerpp::fi

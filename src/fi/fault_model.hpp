// Fault model (paper §II-C):
//  * transient hardware faults in the processor datapath, manifesting as
//    bit flips in the output value of one operator instance per inference;
//  * memory / caches / register file are ECC-protected, so weights (Const
//    nodes) and program inputs are never corrupted;
//  * single-bit flips by default; the multi-bit mode (§VI-B) flips 2-5 bits
//    in independently chosen values;
//  * the last FC layer (and anything after it) is excluded from injection —
//    model builders mark those nodes non-injectable (§V-B).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/executor.hpp"
#include "graph/graph.hpp"
#include "graph/plan.hpp"
#include "tensor/dtype.hpp"
#include "util/rng.hpp"

namespace rangerpp::fi {

// How a fault point perturbs its target bit.  kFlip is the transient
// datapath model (XOR); the stuck-at actions model a failed parameter-
// memory cell that reads a fixed level — forcing a bit to its stored
// value is a no-op, which is exactly the physical behaviour.
enum class FaultAction : std::uint8_t { kFlip, kStuck0, kStuck1 };

// One bit fault at one element of one node's output (an operator output
// under the activation fault class, a Const tensor under the weight
// class).  Nodes are addressed by *name* so a fault planned on an
// unprotected graph can be replayed on its Ranger-transformed twin
// (names are preserved by the transform).
struct FaultPoint {
  std::string node_name;
  std::size_t element = 0;
  int bit = 0;
  FaultAction action = FaultAction::kFlip;
};

// Applies one fault point's bit action to a value through the datatype
// codec (the value is encoded, the bit flipped/forced, and the result
// decoded — so the output is always representable).
float apply_fault_value(tensor::DType dtype, float value,
                        const FaultPoint& f);

// Scheme-aware variant: corrupts through the node's quantisation scheme
// (identical to the dtype overload for canonical schemes; under int8 the
// bit space is the node's calibrated per-tensor format).
float apply_fault_value(const tensor::QScheme& scheme, float value,
                        const FaultPoint& f);

// The set of flips applied during one inference (size 1 under the default
// single-bit model, 2-5 under the multi-bit model).
using FaultSet = std::vector<FaultPoint>;

// Enumerates the injectable sites of a graph: every element of every
// injectable node's output.  Sampling is uniform over *elements* (matching
// TensorFI), so larger layers absorb proportionally more faults.
class SiteSpace {
 public:
  // Shapes are obtained from Graph::infer_shapes (no execution needed).
  SiteSpace(const graph::Graph& g, tensor::DType dtype);

  // Uniformly samples `n_bits` independent fault points (the paper's
  // default multi-bit model: multiple independent values corrupted).
  FaultSet sample(util::Rng& rng, int n_bits) const;

  // Samples one value and flips `n_bits` *consecutive* bit positions in it
  // (the alternative burst model of §VI-B, after Yang et al. [58]).
  FaultSet sample_consecutive(util::Rng& rng, int n_bits) const;

  std::size_t total_elements() const { return total_; }
  std::size_t injectable_nodes() const { return nodes_.size(); }

  // Element count of a node's output (0 when not injectable); keyed by
  // name, for tests and for baselines that weight coverage by site mass.
  std::size_t elements_of(const std::string& node_name) const;

  // Positional access to the injectable sites, in graph (topological)
  // order — the basis for stratified campaign sampling, which partitions
  // trials over (site, bit-group) strata.
  const std::string& site_name(std::size_t i) const { return nodes_[i].name; }
  std::size_t site_elements(std::size_t i) const { return nodes_[i].elements; }
  // Index of a node's site (SIZE_MAX when not injectable).
  std::size_t site_index(const std::string& node_name) const;

  int dtype_bits() const { return dtype_bits_; }

 private:
  struct Entry {
    std::string name;
    std::size_t elements;
    std::size_t cumulative;  // inclusive upper bound of this node's range
  };
  std::vector<Entry> nodes_;
  std::size_t total_ = 0;
  int dtype_bits_ = 32;
};

// Builds an executor hook that applies `faults` (resolved against `g` by
// node name) by flipping bits of the datatype representation.  Fault
// points naming nodes absent from the graph are ignored (they cannot occur
// when the SiteSpace came from the same graph; during cross-graph replay
// every original node name still exists by construction).
graph::PostOpHook make_injection_hook(const graph::Graph& g,
                                      tensor::DType dtype,
                                      const FaultSet& faults);

// Plan-aware variant: corrupts each node through plan.qscheme(id), which
// is what an int8 plan's per-tensor calibration requires (identical to
// the graph overload for canonical dtypes).  The plan must outlive the
// returned hook.
graph::PostOpHook make_injection_hook(const graph::ExecutionPlan& plan,
                                      const FaultSet& faults);

// Batched-trial variant: `row_faults[b]` is the fault set of the trial
// riding in batch row b of a plan compiled with batch == row_faults.size().
// Each fault's single-image element index is offset into its row of the
// batched output (per-image element counts come from `plan`), so row b of
// the batched run reproduces trial b's single-image injection
// bit-identically and rows stay independent.  Corrupts through
// plan.qscheme(id); the plan must outlive the returned hook.
graph::PostOpHook make_batched_injection_hook(
    const graph::ExecutionPlan& plan, std::span<const FaultSet> row_faults);

}  // namespace rangerpp::fi

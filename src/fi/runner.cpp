#include "fi/runner.hpp"

#include <algorithm>
#include <fstream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <unordered_set>

#include "fi/record_codec.hpp"
#include "util/metrics.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace rangerpp::fi {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

// Format-agnostic checkpoint appender: JSONL or the binary v2 codec,
// chosen by the path suffix (see RunnerConfig::checkpoint_path).
struct CheckpointWriter {
  FilePtr file;
  bool binary = false;

  explicit operator bool() const { return file != nullptr; }

  void header(const CheckpointHeader& h) {
    if (binary) {
      std::string bytes;
      encode_stream_header(bytes, h);
      std::fwrite(bytes.data(), 1, bytes.size(), file.get());
      std::fflush(file.get());
    } else {
      write_checkpoint_header(file.get(), h);
    }
  }

  void record(const TrialRecord& r) {
    if (binary) {
      std::string bytes;
      encode_record(bytes, r);
      std::fwrite(bytes.data(), 1, bytes.size(), file.get());
    } else {
      append_trial_record(file.get(), r);
    }
  }

  void flush() { std::fflush(file.get()); }
};

}  // namespace

CampaignRunner::CampaignRunner(RunnerConfig config)
    : config_(std::move(config)) {
  if (config_.shard_count == 0)
    throw std::invalid_argument("CampaignRunner: shard_count == 0");
  if (config_.shard_index >= config_.shard_count)
    throw std::invalid_argument(
        "CampaignRunner: shard_index out of range (want --shard i/N with "
        "i < N)");
  if (config_.check_every == 0)
    throw std::invalid_argument("CampaignRunner: check_every == 0");
  if (config_.target_half_width_pct < 0.0)
    throw std::invalid_argument(
        "CampaignRunner: negative target_half_width_pct");
}

CheckpointHeader CampaignRunner::make_header(std::size_t n_inputs,
                                             std::size_t judge_count) const {
  CheckpointHeader h;
  h.label = config_.label;
  h.seed = config_.campaign.seed;
  h.dtype = std::string(tensor::dtype_name(config_.campaign.dtype));
  h.n_bits = config_.campaign.n_bits;
  h.consecutive_bits = config_.campaign.consecutive_bits;
  h.trials_per_input = config_.campaign.trials_per_input;
  h.inputs = n_inputs;
  h.judges = judge_count;
  h.fault_class =
      std::string(fault_class_token(config_.campaign.fault_class));
  h.weight_kind = std::string(
      weight_fault_kind_token(config_.campaign.weight_fault.kind));
  h.ecc = ecc_token(config_.campaign.ecc);
  h.sampling = config_.stratified.enabled ? "stratified" : "uniform";
  h.bit_group_size = config_.stratified.bit_group_size;
  h.shard_index = config_.shard_index;
  h.shard_count = config_.shard_count;
  return h;
}

CampaignReport CampaignRunner::run(const graph::Graph& g,
                                   const std::vector<Feeds>& inputs,
                                   const std::vector<JudgePtr>& judges) const {
  RunContext ctx;
  ctx.plan_graph = &g;
  return run(ctx, inputs, judges);
}

CampaignReport CampaignRunner::run(const RunContext& ctx,
                                   const std::vector<Feeds>& inputs,
                                   const std::vector<JudgePtr>& judges) const {
  if (!ctx.plan_graph)
    throw std::invalid_argument("CampaignRunner: RunContext without a "
                                "plan_graph");
  if (inputs.empty())
    throw std::invalid_argument("CampaignRunner: no inputs");
  if (judges.empty() || judges.size() > 32)
    throw std::invalid_argument("CampaignRunner: need 1..32 judges");
  if (ctx.executor &&
      ctx.executor->config().dtype != config_.campaign.dtype)
    throw std::invalid_argument(
        "CampaignRunner: shared executor dtype differs from the campaign's");
  if (ctx.judge_golden && ctx.judge_golden->size() != inputs.size())
    throw std::invalid_argument(
        "CampaignRunner: judge_golden must hold one output per input");
  if (ctx.worker_base != 0 &&
      (!ctx.executor || ctx.worker_base >= ctx.executor->workers()))
    throw std::invalid_argument(
        "CampaignRunner: worker_base requires a shared executor with "
        "arena slots above the base");
  const graph::Graph& exec_graph =
      ctx.exec_graph ? *ctx.exec_graph : *ctx.plan_graph;

  const TrialPlanner planner(*ctx.plan_graph, config_.campaign,
                             inputs.size(), config_.stratified);
  const std::size_t total = planner.total_trials();

  std::map<std::string, double> weights;
  for (std::size_t s = 0; s < planner.strata_count(); ++s)
    weights[planner.stratum_key(s)] = planner.stratum_weight(s);

  CheckpointHeader header = make_header(inputs.size(), judges.size());
  header.strata_weights = format_strata_weights(weights);

  // Resume: load existing records and subtract them from the work list.
  std::vector<TrialRecord> records;
  std::unordered_set<std::uint64_t> done;
  bool resuming = false;
  if (!config_.checkpoint_path.empty() &&
      std::ifstream(config_.checkpoint_path).good()) {
    Checkpoint cp = load_checkpoint(config_.checkpoint_path);
    if (cp.header.fingerprint() != header.fingerprint() ||
        cp.header.shard_index != header.shard_index ||
        cp.header.shard_count != header.shard_count)
      throw std::runtime_error(
          "CampaignRunner: checkpoint " + config_.checkpoint_path +
          " was written by a different campaign/shard\n  expected " +
          header.fingerprint() + " shard " +
          std::to_string(header.shard_index) + "/" +
          std::to_string(header.shard_count) + "\n  found    " +
          cp.header.fingerprint() + " shard " +
          std::to_string(cp.header.shard_index) + "/" +
          std::to_string(cp.header.shard_count));
    for (TrialRecord& r : cp.records) {
      if (r.trial >= total ||
          r.trial % config_.shard_count != config_.shard_index)
        throw std::runtime_error("CampaignRunner: checkpoint " +
                                 config_.checkpoint_path +
                                 " contains trial " +
                                 std::to_string(r.trial) +
                                 " outside this shard");
      if (done.insert(r.trial).second) records.push_back(std::move(r));
    }
    resuming = true;
  }

  std::vector<std::size_t> pending;
  for (std::size_t t = config_.shard_index; t < total;
       t += config_.shard_count)
    if (!done.count(t)) pending.push_back(t);
  const std::size_t shard_planned =
      total > config_.shard_index
          ? (total - config_.shard_index + config_.shard_count - 1) /
                config_.shard_count
          : 0;
  if (config_.max_new_trials != 0 &&
      pending.size() > config_.max_new_trials)
    pending.resize(config_.max_new_trials);
  util::metrics::counter_add("campaign.trials_planned", pending.size());
  if (!done.empty())
    util::metrics::counter_add("campaign.trials_resumed", done.size());

  // On resume the checkpoint is rewritten (via temp + rename), not
  // appended: a killed writer can leave a torn, newline-less final line
  // that load_checkpoint drops, and appending after that fragment would
  // corrupt the file.  Re-serialising the parsed state makes the file
  // canonical again, and the rename keeps the old file intact if this
  // process dies mid-rewrite.
  CheckpointWriter file;
  file.binary = binary_checkpoint_path(config_.checkpoint_path);
  if (!config_.checkpoint_path.empty()) {
    const char* write_mode = file.binary ? "wb" : "w";
    if (resuming) {
      const std::string tmp = config_.checkpoint_path + ".tmp";
      CheckpointWriter rewrite{FilePtr(std::fopen(tmp.c_str(), write_mode)),
                               file.binary};
      if (!rewrite)
        throw std::runtime_error("CampaignRunner: cannot write " + tmp);
      rewrite.header(header);
      for (const TrialRecord& r : records) rewrite.record(r);
      rewrite.file.reset();
      if (std::rename(tmp.c_str(), config_.checkpoint_path.c_str()) != 0)
        throw std::runtime_error("CampaignRunner: cannot replace " +
                                 config_.checkpoint_path);
      file.file.reset(std::fopen(config_.checkpoint_path.c_str(),
                                 file.binary ? "ab" : "a"));
    } else {
      file.file.reset(
          std::fopen(config_.checkpoint_path.c_str(), write_mode));
      if (file) file.header(header);
    }
    if (!file)
      throw std::runtime_error("CampaignRunner: cannot open checkpoint " +
                               config_.checkpoint_path);
  }

  // Aggregate Wilson half-width of judge 0, in percent, over everything
  // recorded so far — the early-stop criterion.
  const auto half_width_pct = [&records] {
    std::size_t sdcs = 0;
    for (const TrialRecord& r : records) sdcs += r.sdc_mask & 1u;
    return 100.0 * util::wilson95(sdcs, records.size()).half_width;
  };

  if (!pending.empty()) {
    // With a shared executor the caller sized the arena pool; cap the
    // parallel width to it so worker indices never outrun the arenas.
    unsigned workers = util::worker_count(
        std::min(pending.size(), config_.check_every),
        config_.campaign.threads);
    if (ctx.executor)
      workers =
          std::min(workers, ctx.executor->workers() - ctx.worker_base);
    std::optional<TrialExecutor> local_executor;
    if (!ctx.executor)
      local_executor.emplace(exec_graph, config_.campaign, inputs, workers);
    const TrialExecutor& executor =
        ctx.executor ? *ctx.executor : *local_executor;
    for (std::size_t offset = 0; offset < pending.size();
         offset += config_.check_every) {
      // Early stop only once at least one full batch of evidence exists;
      // checked at deterministic (batch) boundaries so a stopped run is
      // still a prefix of the shard's trial sequence.
      if (config_.target_half_width_pct > 0.0 &&
          records.size() >= config_.check_every &&
          half_width_pct() <= config_.target_half_width_pct)
        break;
      const std::size_t batch_n =
          std::min(config_.check_every, pending.size() - offset);
      util::trace::Span batch_span("campaign.batch");
      batch_span.arg("trials", batch_n);
      util::Timer batch_timer;
      std::vector<TrialRecord> batch(batch_n);
      // Consecutive pending trials of the same input ride one batched
      // plan run (pending is ascending, so same-input runs are already
      // contiguous); grouping never changes the records — batched rows
      // are bit-identical to per-trial execution.  Weight campaigns group
      // by *fault* instead: the n_inputs consecutive trials of one
      // persistent fault share a single const patch (the input sweep).
      const bool weight =
          config_.campaign.fault_class == FaultClass::kWeight;
      const std::size_t bsz = std::max<std::size_t>(1, executor.batch());
      const std::size_t group_cap = weight ? inputs.size() : bsz;
      const auto group_key = [&](std::size_t t) {
        return weight ? t / inputs.size()
                      : t / config_.campaign.trials_per_input;
      };
      struct Group {
        std::size_t offset, count;
      };
      std::vector<Group> groups;
      groups.reserve(batch_n / group_cap + 1);
      for (std::size_t i = 0; i < batch_n;) {
        const std::size_t key = group_key(pending[offset + i]);
        std::size_t count = 1;
        while (count < group_cap && i + count < batch_n &&
               group_key(pending[offset + i + count]) == key)
          ++count;
        groups.push_back({i, count});
        i += count;
      }
      const auto record_trial = [&](std::size_t i, const TrialSpec& spec,
                                    const tensor::Tensor& out) {
        const tensor::Tensor& golden =
            ctx.judge_golden ? (*ctx.judge_golden)[spec.input]
                             : executor.golden_output(spec.input);
        std::uint32_t mask = 0;
        for (std::size_t j = 0; j < judges.size(); ++j)
          if (judges[j]->is_sdc(golden, out)) mask |= 1u << j;
        TrialRecord& r = batch[i];
        r.trial = spec.trial;
        r.input = static_cast<std::uint32_t>(spec.input);
        r.faults = spec.faults;
        r.stratum = planner.stratum_key(spec.stratum);
        r.sdc_mask = mask;
      };
      util::parallel_for_workers(
          groups.size(),
          [&](unsigned local_worker, std::size_t gi) {
            // Arena slot in the (possibly shared) executor; local
            // workers start at the caller's base (RunContext).
            const unsigned worker = ctx.worker_base + local_worker;
            const Group group = groups[gi];
            if (weight) {
              // One persistent fault, patched once, swept over the
              // group's inputs.  Every trial of the group shares the
              // fault stream (plan() keys it on t / n_inputs), so the
              // first spec's applied set is the group's.
              const TrialSpec first =
                  planner.plan(pending[offset + group.offset]);
              const TrialExecutor::PatchedConsts patch =
                  executor.patch_consts(first.applied);
              for (std::size_t i = group.offset;
                   i < group.offset + group.count; ++i) {
                const TrialSpec spec = planner.plan(pending[offset + i]);
                record_trial(i, spec,
                             executor.run_weight_trial(worker, spec.input,
                                                       patch));
              }
              return;
            }
            if (group.count == 1 || executor.batch() == 1) {
              for (std::size_t i = group.offset;
                   i < group.offset + group.count; ++i) {
                const TrialSpec spec = planner.plan(pending[offset + i]);
                record_trial(i, spec,
                             executor.run_trial(worker, spec.input,
                                                spec.faults));
              }
              return;
            }
            std::vector<TrialSpec> specs;
            std::vector<FaultSet> faults;
            specs.reserve(group.count);
            faults.reserve(group.count);
            for (std::size_t i = 0; i < group.count; ++i) {
              specs.push_back(planner.plan(pending[offset + group.offset + i]));
              // Groups were formed by the t / trials_per_input rule; a
              // planner that assigns inputs differently must fail loudly,
              // not judge against the wrong golden.
              if (specs.back().input != specs.front().input)
                throw std::logic_error(
                    "CampaignRunner: trial group spans inputs — "
                    "planner/grouping mismatch");
              faults.push_back(specs.back().faults);
            }
            const std::vector<tensor::Tensor> outs = executor.run_trial_batch(
                worker, specs[0].input, faults);
            for (std::size_t i = 0; i < group.count; ++i)
              record_trial(group.offset + i, specs[i], outs[i]);
          },
          workers);
      util::metrics::counter_add("campaign.batches");
      util::metrics::counter_add("campaign.trials", batch_n);
      util::metrics::observe_ms("campaign.batch_ms",
                                batch_timer.elapsed_ms());
      util::trace::Span write_span("checkpoint.write");
      write_span.arg("records", batch_n);
      for (TrialRecord& r : batch) {
        if (file) file.record(r);
        records.push_back(std::move(r));
      }
      if (file) file.flush();
    }
  }

  return build_report(std::move(records), judges.size(), shard_planned,
                      weights);
}

}  // namespace rangerpp::fi

#include "fi/sdc.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "graph/executor.hpp"

namespace rangerpp::fi {

bool Top1Judge::is_sdc(const tensor::Tensor& golden,
                       const tensor::Tensor& faulty) const {
  return graph::argmax(golden) != graph::argmax(faulty);
}

bool Top5Judge::is_sdc(const tensor::Tensor& golden,
                       const tensor::Tensor& faulty) const {
  const int label = graph::argmax(golden);
  const std::vector<int> top5 = graph::top_k(faulty, 5);
  return std::find(top5.begin(), top5.end(), label) == top5.end();
}

SteeringJudge::SteeringJudge(double threshold_degrees, bool output_in_radians)
    : threshold_degrees_(threshold_degrees), radians_(output_in_radians) {
  if (threshold_degrees <= 0.0)
    throw std::invalid_argument("SteeringJudge: non-positive threshold");
}

bool SteeringJudge::is_sdc(const tensor::Tensor& golden,
                           const tensor::Tensor& faulty) const {
  double g = golden.at(0);
  double f = faulty.at(0);
  if (radians_) {
    g *= 180.0 / std::numbers::pi;
    f *= 180.0 / std::numbers::pi;
  }
  const double dev = std::abs(g - f);
  // A NaN output (possible under float32 faults) is always corrupt.
  if (std::isnan(dev)) return true;
  return dev > threshold_degrees_;
}

}  // namespace rangerpp::fi

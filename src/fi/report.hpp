// Campaign aggregation layer: per-trial records, JSONL checkpoint files,
// shard merging and the statistical campaign report.
//
// Checkpoint format (one JSON object per line, written by this module and
// parsed only by it — field values avoid characters that would need
// escaping):
//
//   {"type":"header","label":"LeNet","seed":2021,"dtype":"fixed32",...}
//   {"type":"trial","t":17,"input":0,"faults":"conv1@37:29",
//    "stratum":"conv1:b24-31","sdc":"01"}
//
// The header carries the campaign fingerprint (seed, datatype, fault
// model, trial counts, sampling mode) so resume and merge can refuse
// mismatched files; trial lines are self-contained records, so a file
// truncated by a killed job loses at most the partially written last line.
//
// Determinism contract: a trial's record is a pure function of the
// campaign fingerprint and the trial index — never of which machine,
// shard, kernel backend, batch size or thread count executed it (backends
// and batching are bit-identical by construction, which is why they are
// deliberately NOT part of the fingerprint).  That is what makes
// merge_checkpoints + records_identical a meaningful reproducibility
// gate.
//
// Thread-safety: everything here is plain value manipulation plus
// caller-owned FILE* streams; no function is safe to call concurrently on
// the same FILE* or the same mutable object, and CampaignRunner is the
// single writer of any checkpoint file.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "fi/campaign.hpp"
#include "util/stats.hpp"

namespace rangerpp::fi {

// Outcome of one executed trial.  `sdc_mask` bit j is set when judge j
// called the trial an SDC (counting more than 32 judges would be a config
// error long before it is a representation problem).
struct TrialRecord {
  std::uint64_t trial = 0;
  std::uint32_t input = 0;
  FaultSet faults;
  std::string stratum;
  std::uint32_t sdc_mask = 0;
};
bool operator==(const TrialRecord& a, const TrialRecord& b);

struct CheckpointHeader {
  std::string label;  // free-form (model name); informational only
  std::uint64_t seed = 0;
  std::string dtype;
  int n_bits = 1;
  bool consecutive_bits = false;
  // Fault-class axis (weight-memory campaigns).  "activation" keeps the
  // pre-weight-subsystem fingerprint string byte-identical, so existing
  // activation checkpoints stay resumable; weight campaigns append
  // class/kind/ecc to the fingerprint (a weight checkpoint can never be
  // confused with an activation one, nor SEC-DED with unprotected).
  std::string fault_class = "activation";  // "activation" | "weight"
  std::string weight_kind = "single";      // WeightFaultKind token
  std::string ecc = "none";                // EccModel token
  std::size_t trials_per_input = 0;
  std::size_t inputs = 0;
  std::size_t judges = 0;
  std::string sampling = "uniform";  // "uniform" | "stratified"
  int bit_group_size = 8;
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  // "key=weight;..." — per-stratum site-probability mass, recorded so a
  // merge of shard files can rebuild the weighted aggregate without the
  // model graph.
  std::string strata_weights;

  // Campaign identity: everything that must match for two files to
  // describe trials of the same campaign.  Shard-agnostic and
  // label-agnostic.
  std::string fingerprint() const;
};

struct Checkpoint {
  CheckpointHeader header;
  std::vector<TrialRecord> records;  // in file order
};

// Streaming writers (runner-side).  Records are buffered; CampaignRunner
// flushes at batch boundaries (check_every trials), so a killed campaign
// loses at most the current batch plus the line being written — resume
// re-executes exactly the missing trials.
void write_checkpoint_header(std::FILE* f, const CheckpointHeader& h);
void append_trial_record(std::FILE* f, const TrialRecord& r);

// The exact line (newline included) the corresponding writer above
// emits — the single source of truth for the JSONL grammar, exposed so
// record_codec's lossless export is byte-identical to a natively
// written checkpoint by construction rather than by parallel printf
// maintenance.
std::string checkpoint_header_line(const CheckpointHeader& h);
std::string trial_record_line(const TrialRecord& r);

// Loads a checkpoint file; throws std::runtime_error on a missing file,
// empty file, or malformed header.  Trial lines are self-contained, so a
// torn or malformed line anywhere in the body only loses itself: a torn
// *final* line — the signature of a killed writer — is dropped silently,
// and a torn line mid-file (disk-full, interleaved writer crash) is
// skipped with a stderr warning while every other record is recovered
// (the runner re-executes the lost trials on resume).
Checkpoint load_checkpoint(const std::string& path);

// ---- Report -----------------------------------------------------------------

struct StratumStats {
  std::string key;
  double weight = -1.0;  // site-probability mass; < 0 = unknown
  std::size_t trials = 0;
  std::vector<std::size_t> sdcs;  // per judge

  util::Interval wilson95(std::size_t judge) const {
    return util::wilson95(sdcs[judge], trials);
  }
};

struct CampaignReport {
  std::size_t planned = 0;  // trials the covered shard set should execute
  std::size_t judge_count = 0;
  std::vector<TrialRecord> records;       // sorted by trial index
  std::vector<CampaignResult> aggregate;  // per judge, raw counts
  std::vector<StratumStats> strata;       // sorted by key
  // Weighted (stratified-estimator) aggregate per judge; empty when any
  // observed stratum has no recorded weight.  Under uniform sampling this
  // agrees with `aggregate` up to sampling noise; under stratified
  // sampling it is the unbiased rate, `aggregate` is not.
  std::vector<util::Interval> weighted;

  std::size_t executed() const { return records.size(); }
};

// Builds a report from records (deduplicated, sorted).  Two records for
// the same trial index must be identical — anything else means two
// checkpoints disagree about a deterministic trial, and throws.
CampaignReport build_report(
    std::vector<TrialRecord> records, std::size_t judge_count,
    std::size_t planned,
    const std::map<std::string, double>& stratum_weights = {});

// Merges shard checkpoints into one report.  All fingerprints must match;
// overlapping trials must agree.  `planned` becomes the full campaign
// size (trials_per_input × inputs).  When `merged_header` is non-null it
// receives a shard-agnostic header suitable for writing a merged file.
CampaignReport merge_checkpoints(const std::vector<std::string>& paths,
                                 CheckpointHeader* merged_header = nullptr);

// Strict per-trial equality (index, fault set, stratum, judge verdicts) —
// the CI gate for shard-merge == single-run reproducibility.
bool records_identical(const std::vector<TrialRecord>& a,
                       const std::vector<TrialRecord>& b);

// Renders aggregate + per-stratum tables to stdout.  `judge_labels` (when
// sized to judge_count) names the per-judge columns.
void print_report(const CampaignReport& report,
                  const std::vector<std::string>& judge_labels = {});

// "key=w;key=w" <-> map helpers for CheckpointHeader::strata_weights.
std::map<std::string, double> parse_strata_weights(const std::string& s);
std::string format_strata_weights(const std::map<std::string, double>& w);

}  // namespace rangerpp::fi

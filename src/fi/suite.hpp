// fi::Suite — the zoo-wide campaign orchestrator.  The paper's results
// are a *grid* — eight DNNs × {fixed32, fixed16} × {single-bit,
// multi-bit, burst} × {unprotected, Ranger} × activation variants — and
// this layer runs that grid as one declarative work plan instead of a
// dozen disconnected bench binaries:
//
//  * SuiteSpec describes the grid; compile_suite() expands it into an
//    ordered list of cells, each with a suite-global trial offset, so
//    the whole suite is one deterministic trial stream.
//  * Expensive state is built once and shared: models::Workload
//    construction (training / weight loading), derived restriction
//    bounds, Ranger-protected graphs, and compiled TrialExecutors
//    (ExecutionPlans + goldens) are cached per (model, act[, dtype])
//    and reused by every fault-model/technique cell.
//  * Each cell executes on the existing CampaignRunner, so per-cell
//    JSONL checkpoints, deterministic sharding and Wilson-CI early
//    stopping compose for free.  Suite-level `--shard i/N` partitions
//    the *global* cell×trial stream: a cell at global offset O maps the
//    suite shard onto the runner-local shard ((i - O) mod N), so the
//    union of suite shards is bit-identical to the unsharded suite,
//    trial for trial, cell for cell.
//  * The `ranger-paired` technique plans fault sites on the unprotected
//    graph and executes them on the protected twin, judged against the
//    unprotected goldens — exactly the Table-VI coverage setup — so
//    coverage becomes a pure join over two cells' per-trial records.
//  * write_suite_manifest() emits one aggregated SUITE_<name>.json
//    (with host metadata), derived only from per-trial records and the
//    spec, so a merged-shards manifest is byte-identical to an
//    unsharded run's — the CI gate.
//  * The report layer regenerates the Fig 6/7/9/11/12 and Table 6
//    numbers from a suite result, bit-identical to the standalone
//    benches at equal seeds/trials (tests/suite_test.cpp asserts this).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "core/bounds.hpp"
#include "fi/runner.hpp"
#include "models/workload.hpp"

namespace rangerpp::fi {

// How a cell runs its campaign:
//  * kUnprotected  — plan and execute on the model's plain graph;
//  * kRanger       — plan and execute on the Ranger-protected graph
//    (the Fig 6/7/9/11/12 configuration: the paper also injects into
//    the restriction ops);
//  * kRangerPaired — plan on the unprotected graph, execute on the
//    protected graph, judge against the unprotected goldens (the
//    Table VI coverage configuration; pairs record-for-record with the
//    kUnprotected cell of the same scalars).
enum class Technique { kUnprotected, kRanger, kRangerPaired };

std::string_view technique_token(Technique t);
std::optional<Technique> technique_from_token(std::string_view s);

// Activation-variant tokens for cell ids / CLIs: "default" (the model's
// published activation, the WorkloadOptions kInput sentinel), "relu",
// "tanh", "sigmoid", "elu".
std::string_view act_token(ops::OpKind act);
std::optional<ops::OpKind> act_from_token(std::string_view s);

// Bare datatype tokens ("fixed32", not tensor::dtype_name's
// "fixed32(Q21.10)") — the one grammar cell ids, manifests and both
// CLIs share.
std::string_view dtype_token(tensor::DType d);
std::optional<tensor::DType> dtype_from_token(std::string_view s);

struct FaultModelSpec {
  int n_bits = 1;
  bool consecutive = false;  // burst: adjacent bits within one value
  // Weight-memory fault axis: cls == kWeight draws faults from Const
  // (weight/bias) tensors under `wkind` (n_bits doubles as the kind's
  // count parameter), optionally filtered through `ecc`, and runs the
  // persistent-fault input sweep (one patched plan per fault reused
  // across every input).  cls == kActivation ignores wkind/ecc.
  FaultClass cls = FaultClass::kActivation;
  WeightFaultKind wkind = WeightFaultKind::kSingleBit;
  EccModel ecc;
};

// Cell-id token of a fault spec: "b1"/"b3c" for activation cells
// (unchanged from the pre-weight grammar), "w<kind>[<n>][-<ecc>]" for
// weight cells (e.g. "wsingle", "wmulti3-secded", "wrow4-cov0.5").
std::string fault_spec_token(const FaultModelSpec& f);

// Inverse of fault_spec_token (the scheduler wire format and CLIs parse
// fault axes with it); round-trips every token the printer emits.
std::optional<FaultModelSpec> fault_spec_from_token(std::string_view s);

struct SuiteSpec {
  std::string name = "suite";
  std::vector<models::ModelId> models;
  // ops::OpKind::kInput is the "published activation" sentinel (the
  // WorkloadOptions convention); additional entries add substituted
  // variants (e.g. kTanh for the Hong-et-al. comparison).
  std::vector<ops::OpKind> acts = {ops::OpKind::kInput};
  std::vector<tensor::DType> dtypes = {tensor::DType::kFixed32};
  std::vector<FaultModelSpec> faults = {{}};
  std::vector<Technique> techniques = {Technique::kUnprotected,
                                       Technique::kRanger};

  // Per-cell trial count = scaled_trials(model, trials_small) /
  // trials_divisor (Table VI runs at half trials, like the bench).
  std::size_t trials_small = 1000;
  std::size_t trials_divisor = 1;
  std::size_t inputs = 8;
  std::uint64_t seed = 2021;

  unsigned threads = 0;           // 0 = hardware concurrency
  std::size_t check_every = 256;  // checkpoint-flush / early-stop batch
  std::size_t max_new_trials = 0; // per cell; 0 = unlimited (tests use
                                  // this to simulate a killed suite)
  // Per-cell Wilson-CI early stop (CampaignRunner's
  // target_half_width_pct); 0 = run every planned trial.  An
  // early-stopped cell records a deterministic prefix of its trial
  // stream, so resume/merge still compose — but its executed count no
  // longer equals planned, so don't combine early stopping with the
  // merged-vs-unsharded manifest byte-identity gate.
  double target_half_width_pct = 0.0;

  // Suite-level shard of the global cell×trial stream.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;

  // Directory for per-cell JSONL checkpoints (created on demand); empty
  // = in-memory only.  Files are named
  // <name>.<cell-id>.s<shard>of<count>.jsonl.
  std::string checkpoint_dir;

  // Run the static plan verifier (graph/verify.hpp) on every cell's
  // compiled plans, even in release builds (CampaignConfig::verify_plan).
  // A local execution knob, not part of the request: it is excluded from
  // the spec wire format — the scheduler daemon's equivalent is the
  // serve-side SchedulerConfig::verify_plans.
  bool verify_plan = false;
};

struct SuiteCell {
  models::ModelId model{};
  ops::OpKind act = ops::OpKind::kInput;
  tensor::DType dtype = tensor::DType::kFixed32;
  FaultModelSpec fault;
  Technique technique = Technique::kUnprotected;

  std::size_t trials_per_input = 0;
  std::size_t total_trials = 0;   // trials_per_input × inputs
  std::size_t global_offset = 0;  // first suite-global trial index
  // Offset used for shard phasing.  Normally global_offset; a
  // kRangerPaired cell reuses its kUnprotected sibling's offset so both
  // cells execute the *same* shard-local trial set — otherwise the
  // paired-coverage record join would intersect nothing whenever the
  // cell size is not a multiple of the shard count.  Any fixed phase
  // still partitions the cell's trials across shards, so the
  // union-of-shards == unsharded contract is unchanged.
  std::size_t shard_offset = 0;
  std::string id;     // "lenet.fixed32.b1.ranger" (+ "+tanh", "c", …)
  std::string label;  // human-readable ("LeNet+ranger")
};

struct SuitePlan {
  SuiteSpec spec;
  std::vector<SuiteCell> cells;
  std::size_t total_trials = 0;
};

// Pure function of the spec: cell order, ids and global offsets are what
// every shard and every resume agree on.  Throws std::invalid_argument
// on an unsatisfiable spec (no models, bad shard, stratum-less grid…).
SuitePlan compile_suite(const SuiteSpec& spec);

// The runner-local shard index a suite shard maps to for a cell at
// `global_offset` (suite trial g = offset + t executes when
// g % N == shard_index).
std::size_t cell_shard_index(std::size_t suite_shard_index,
                             std::size_t shard_count,
                             std::size_t global_offset);

// The RunnerConfig Suite::run() executes `cell` under (campaign
// scalars, shard mapping, batching, label — everything except the
// checkpoint path, which depends on the caller's directory layout).
// Exposed so the scheduler daemon compiles cells to the exact same
// configs: the byte-identity contract between a scheduled request and a
// one-shot suite run holds because both paths call this one function.
RunnerConfig cell_runner_config(const SuiteSpec& spec,
                                const SuiteCell& cell);

struct SuiteCellResult {
  SuiteCell cell;
  CampaignReport report;
};

struct SuiteResult {
  SuitePlan plan;
  std::vector<SuiteCellResult> cells;  // in plan order
};

class Suite {
 public:
  // `shared_workloads` (optional) lets several suites — or a suite and a
  // bench evaluating extra techniques — share one workload cache; it
  // must outlive the Suite.  Its options' eval_inputs/seed are
  // overridden from the spec only when the cache is owned internally.
  explicit Suite(SuiteSpec spec,
                 models::WorkloadCache* shared_workloads = nullptr);

  const SuitePlan& plan() const { return plan_; }

  // Runs (or resumes) this shard of every cell, reusing cached state
  // across cells, and returns the per-cell reports in plan order.
  SuiteResult run();

  // Loads and merges the per-cell shard checkpoints found in `dirs`
  // (files written by run() under any shard spec) into full-campaign
  // reports — no trials execute.  Throws if a cell has no checkpoint.
  SuiteResult merge(const std::vector<std::string>& dirs) const;

  models::WorkloadCache& workloads() {
    return shared_ ? *shared_ : *owned_;
  }
  // Cached Ranger state, shared across every cell of (model, act).
  const core::Bounds& bounds(models::ModelId id, ops::OpKind act);
  const graph::Graph& protected_graph(models::ModelId id, ops::OpKind act);

 private:
  const TrialExecutor& executor(const SuiteCell& cell,
                                const graph::Graph& g,
                                const std::vector<Feeds>& inputs,
                                bool is_protected);
  const std::vector<tensor::Tensor>& unprotected_goldens(
      const SuiteCell& cell);

  SuitePlan plan_;
  models::WorkloadCache* shared_ = nullptr;
  std::unique_ptr<models::WorkloadCache> owned_;
  std::map<std::pair<int, int>, core::Bounds> bounds_;
  std::map<std::pair<int, int>, graph::Graph> protected_;
  // (model, act, protected?, dtype) → compiled plans + goldens.
  std::map<std::tuple<int, int, int, int>, std::unique_ptr<TrialExecutor>>
      executors_;
  std::map<std::tuple<int, int, int>, std::vector<tensor::Tensor>>
      goldens_;
};

// ---- Manifest ---------------------------------------------------------------

// Writes the aggregated SUITE manifest: spec dimensions, host metadata
// (hardware_concurrency, kernel backend, seed, trial counts — so
// artifacts are comparable across machines), per-cell counts with
// Wilson intervals, and the paired-coverage join.  Derived only from
// (spec, per-trial records), so merged shards and an unsharded run
// produce byte-identical manifests on the same host.
void write_suite_manifest(const std::string& path, const SuiteResult& r);

// ---- Report layer -----------------------------------------------------------

// Wilson centre ± half-width in percent, the format every figure
// quotes: the normal approximation collapses to ±0 at the 0-SDC rates
// Ranger drives campaigns toward, and quoting the raw proportion
// against the Wilson half-width would misstate the interval (it is
// centred on the adjusted estimate).
std::string pct_pm(const CampaignResult& r);

// Table-VI coverage from the record join of a kRangerPaired cell and its
// kUnprotected sibling: of the trials whose unprotected run is an SDC
// (any judge), the fraction the protected run rectifies.  nullopt when
// the sibling cell is absent from the result.
struct PairedCoverage {
  std::size_t sdcs = 0;     // unprotected-SDC trials (the denominator)
  std::size_t covered = 0;  // …whose protected run is SDC-free
  double pct() const {
    return sdcs == 0 ? 0.0
                     : 100.0 * static_cast<double>(covered) /
                           static_cast<double>(sdcs);
  }
};
std::optional<PairedCoverage> paired_coverage(const SuiteResult& r,
                                              std::size_t paired_cell_index);

// Regenerate the paper-figure tables from a suite result (each prints
// the cells it finds; a grid without the needed dimensions prints a
// note instead).  `mode` ∈ {cells, fig6, fig7, fig9, int8, fig11,
// fig12, table6, all}.  `suite` (optional) supplies graphs for the
// Table-VI FLOPs-overhead column.
void print_suite_report(const SuiteResult& r, const std::string& mode,
                        Suite* suite = nullptr);

void print_fig6(const SuiteResult& r);
void print_fig7(const SuiteResult& r);
void print_fig9(const SuiteResult& r);
// Fig-9-shaped table over the int8 cells: does Ranger still contain
// single-bit faults at calibrated 8-bit precision?  (`mode` token:
// "int8".)
void print_fig9_int8(const SuiteResult& r);
void print_fig11(const SuiteResult& r);
void print_fig12(const SuiteResult& r);
void print_table6_coverage(const SuiteResult& r, Suite* suite = nullptr);

}  // namespace rangerpp::fi

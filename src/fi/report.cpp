#include "fi/report.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string_view>

#include "fi/record_codec.hpp"
#include "util/table.hpp"

namespace rangerpp::fi {

namespace {

// The checkpoint grammar is written and read only by this module, so
// parsing is a handful of key lookups rather than a JSON library.  Values
// written by us never contain quotes or backslashes (sanitise_label below
// enforces it for the one free-form field).

bool find_raw(const std::string& line, const std::string& key,
              std::string& out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  std::size_t start = pos + needle.size();
  if (start >= line.size()) return false;
  if (line[start] == '"') {
    const std::size_t end = line.find('"', start + 1);
    if (end == std::string::npos) return false;
    out = line.substr(start + 1, end - start - 1);
    return true;
  }
  std::size_t end = start;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  if (end >= line.size()) return false;  // torn line: no closing brace
  out = line.substr(start, end - start);
  return true;
}

bool find_u64(const std::string& line, const std::string& key,
              std::uint64_t& out) {
  std::string raw;
  if (!find_raw(line, key, raw) || raw.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(raw.c_str(), &end, 10);
  return end && *end == '\0';
}

std::string sanitise_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s)
    if (c != '"' && c != '\\' && c != '\n' && c != '\r') out.push_back(c);
  return out;
}

// "node@element:bit,node@element:bit" — node names never contain '@' or
// ','; element and bit are decimal.  Stuck-at points (weight campaigns)
// append "s0"/"s1" after the bit; plain flips keep the bare grammar, so
// activation records are byte-identical to the pre-weight-subsystem
// format.
std::string encode_faults(const FaultSet& faults) {
  std::string out;
  for (const FaultPoint& f : faults) {
    if (!out.empty()) out.push_back(',');
    out += f.node_name + "@" + std::to_string(f.element) + ":" +
           std::to_string(f.bit);
    if (f.action == FaultAction::kStuck0) out += "s0";
    else if (f.action == FaultAction::kStuck1) out += "s1";
  }
  return out;
}

bool decode_faults(const std::string& s, FaultSet& out) {
  out.clear();
  std::size_t start = 0;
  while (start < s.size()) {
    std::size_t end = s.find(',', start);
    if (end == std::string::npos) end = s.size();
    const std::string part = s.substr(start, end - start);
    const std::size_t at = part.rfind('@');
    const std::size_t colon = part.rfind(':');
    if (at == std::string::npos || colon == std::string::npos ||
        colon <= at + 1)
      return false;
    FaultPoint f;
    f.node_name = part.substr(0, at);
    f.element = std::strtoull(part.c_str() + at + 1, nullptr, 10);
    char* bit_end = nullptr;
    f.bit = static_cast<int>(
        std::strtol(part.c_str() + colon + 1, &bit_end, 10));
    const std::string suffix(bit_end ? bit_end : "");
    if (suffix == "s0") f.action = FaultAction::kStuck0;
    else if (suffix == "s1") f.action = FaultAction::kStuck1;
    else if (!suffix.empty()) return false;
    out.push_back(std::move(f));
    start = end + 1;
  }
  return !out.empty();
}

bool parse_trial_line(const std::string& line, TrialRecord& r) {
  std::uint64_t u = 0;
  if (!find_u64(line, "t", u)) return false;
  r.trial = u;
  if (!find_u64(line, "input", u)) return false;
  r.input = static_cast<std::uint32_t>(u);
  std::string faults;
  if (!find_raw(line, "faults", faults) || !decode_faults(faults, r.faults))
    return false;
  if (!find_raw(line, "stratum", r.stratum)) return false;
  if (!find_u64(line, "sdc", u)) return false;
  r.sdc_mask = static_cast<std::uint32_t>(u);
  // A torn line would have lost its closing brace and failed find_raw
  // above; require it anyway for the numeric-tail case.
  return line.find('}') != std::string::npos;
}

}  // namespace

bool operator==(const TrialRecord& a, const TrialRecord& b) {
  if (a.trial != b.trial || a.input != b.input || a.stratum != b.stratum ||
      a.sdc_mask != b.sdc_mask || a.faults.size() != b.faults.size())
    return false;
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    const FaultPoint& x = a.faults[i];
    const FaultPoint& y = b.faults[i];
    if (x.node_name != y.node_name || x.element != y.element ||
        x.bit != y.bit || x.action != y.action)
      return false;
  }
  return true;
}

std::string CheckpointHeader::fingerprint() const {
  // The strata table (node names × element counts × bit grouping) is the
  // graph's signature: hashing it into the fingerprint stops a resume or
  // merge from silently mixing checkpoints of different models that
  // happen to share every scalar setting.
  std::uint64_t graph_hash = 0xcbf29ce484222325ULL;  // FNV-1a
  for (unsigned char c : strata_weights)
    graph_hash = (graph_hash ^ c) * 0x100000001b3ULL;
  std::string fp =
      "seed=" + std::to_string(seed) + "|dtype=" + dtype +
      "|n_bits=" + std::to_string(n_bits) +
      "|consecutive=" + std::to_string(consecutive_bits ? 1 : 0) +
      "|trials_per_input=" + std::to_string(trials_per_input) +
      "|inputs=" + std::to_string(inputs) +
      "|judges=" + std::to_string(judges) + "|sampling=" + sampling +
      "|bit_group=" + std::to_string(bit_group_size) +
      "|graph=" + std::to_string(graph_hash);
  // Weight campaigns fingerprint their fault-model kind and ECC;
  // activation campaigns keep the historical string byte-identical.
  if (fault_class != "activation")
    fp += "|class=" + fault_class + "|wkind=" + weight_kind + "|ecc=" + ecc;
  return fp;
}

std::string checkpoint_header_line(const CheckpointHeader& h) {
  char buf[512];
  const int n = std::snprintf(
      buf, sizeof buf,
      "{\"type\":\"header\",\"label\":\"%s\",\"seed\":%" PRIu64
      ",\"dtype\":\"%s\",\"n_bits\":%d,\"consecutive\":%d,"
      "\"fault_class\":\"%s\",\"weight_kind\":\"%s\",\"ecc\":\"%s\","
      "\"trials_per_input\":%zu,\"inputs\":%zu,\"judges\":%zu,"
      "\"sampling\":\"%s\",\"bit_group\":%d,\"shard_index\":%zu,"
      "\"shard_count\":%zu,\"strata\":\"",
      sanitise_label(h.label).c_str(), h.seed, h.dtype.c_str(), h.n_bits,
      h.consecutive_bits ? 1 : 0, h.fault_class.c_str(),
      h.weight_kind.c_str(), h.ecc.c_str(), h.trials_per_input, h.inputs,
      h.judges, h.sampling.c_str(), h.bit_group_size, h.shard_index,
      h.shard_count);
  // Strata weights can exceed any fixed buffer (one entry per stratum),
  // so they are appended as a string instead of going through snprintf.
  std::string line(buf, static_cast<std::size_t>(n));
  line += h.strata_weights;
  line += "\"}\n";
  return line;
}

std::string trial_record_line(const TrialRecord& r) {
  std::string line = "{\"type\":\"trial\",\"t\":" +
                     std::to_string(r.trial) +
                     ",\"input\":" + std::to_string(r.input) +
                     ",\"faults\":\"" + encode_faults(r.faults) +
                     "\",\"stratum\":\"" + r.stratum +
                     "\",\"sdc\":" + std::to_string(r.sdc_mask) + "}\n";
  return line;
}

void write_checkpoint_header(std::FILE* f, const CheckpointHeader& h) {
  const std::string line = checkpoint_header_line(h);
  std::fwrite(line.data(), 1, line.size(), f);
  std::fflush(f);
}

void append_trial_record(std::FILE* f, const TrialRecord& r) {
  const std::string line = trial_record_line(r);
  std::fwrite(line.data(), 1, line.size(), f);
}

Checkpoint load_checkpoint(const std::string& path) {
  // Binary (checkpoint-v2) files announce themselves with the codec
  // magic; route them to the binary decoder so every consumer of JSONL
  // checkpoints — resume, --merge, --golden, Suite::merge — reads both
  // formats transparently.
  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe)
      throw std::runtime_error("checkpoint: cannot open " + path);
    char magic[4] = {};
    probe.read(magic, sizeof magic);
    if (probe.gcount() == sizeof magic &&
        is_binary_checkpoint(std::string_view(magic, sizeof magic)))
      return load_binary_checkpoint(path);
  }
  std::ifstream in(path);
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  if (lines.empty())
    throw std::runtime_error("checkpoint: empty file " + path);

  Checkpoint cp;
  std::string type;
  if (!find_raw(lines[0], "type", type) || type != "header")
    throw std::runtime_error("checkpoint: missing header line in " + path);
  CheckpointHeader& h = cp.header;
  std::uint64_t u = 0;
  find_raw(lines[0], "label", h.label);
  if (!find_u64(lines[0], "seed", u))
    throw std::runtime_error("checkpoint: bad header (seed) in " + path);
  h.seed = u;
  if (!find_raw(lines[0], "dtype", h.dtype))
    throw std::runtime_error("checkpoint: bad header (dtype) in " + path);
  if (find_u64(lines[0], "n_bits", u)) h.n_bits = static_cast<int>(u);
  if (find_u64(lines[0], "consecutive", u)) h.consecutive_bits = u != 0;
  // Absent in pre-weight-subsystem files; the defaults are the
  // activation fault class those files were written under.
  find_raw(lines[0], "fault_class", h.fault_class);
  find_raw(lines[0], "weight_kind", h.weight_kind);
  find_raw(lines[0], "ecc", h.ecc);
  std::uint64_t tpi = 0, inputs = 0, judges = 0;
  if (!find_u64(lines[0], "trials_per_input", tpi) ||
      !find_u64(lines[0], "inputs", inputs) ||
      !find_u64(lines[0], "judges", judges))
    throw std::runtime_error("checkpoint: bad header (counts) in " + path);
  h.trials_per_input = tpi;
  h.inputs = inputs;
  h.judges = judges;
  find_raw(lines[0], "sampling", h.sampling);
  if (find_u64(lines[0], "bit_group", u))
    h.bit_group_size = static_cast<int>(u);
  if (find_u64(lines[0], "shard_index", u)) h.shard_index = u;
  if (find_u64(lines[0], "shard_count", u)) h.shard_count = u;
  find_raw(lines[0], "strata", h.strata_weights);

  for (std::size_t i = 1; i < lines.size(); ++i) {
    TrialRecord r;
    if (!find_raw(lines[i], "type", type) || type != "trial" ||
        !parse_trial_line(lines[i], r)) {
      if (i + 1 == lines.size()) break;  // torn final line: killed writer
      // A torn line mid-file (disk-full write, a writer killed while the
      // tail was later appended to, interleaved NFS writes) must not
      // discard the surrounding valid records: every trial line is
      // self-contained, so recovery keeps everything that parses and the
      // runner simply re-executes the lost trials on resume.  Warn so an
      // unexpectedly corrupted file is still visible.
      std::fprintf(stderr,
                   "checkpoint: warning: skipping malformed line %zu in %s "
                   "(recovering the remaining records; missing trials will "
                   "be re-executed on resume)\n",
                   i + 1, path.c_str());
      continue;
    }
    cp.records.push_back(std::move(r));
  }
  return cp;
}

// ---- Report -----------------------------------------------------------------

CampaignReport build_report(
    std::vector<TrialRecord> records, std::size_t judge_count,
    std::size_t planned,
    const std::map<std::string, double>& stratum_weights) {
  if (judge_count == 0 || judge_count > 32)
    throw std::invalid_argument("build_report: judge_count out of range");
  std::sort(records.begin(), records.end(),
            [](const TrialRecord& a, const TrialRecord& b) {
              return a.trial < b.trial;
            });
  // Deduplicate (merged shard files may overlap a resumed range); two
  // records for one trial index must agree — trials are deterministic.
  std::vector<TrialRecord> unique;
  unique.reserve(records.size());
  for (TrialRecord& r : records) {
    if (!unique.empty() && unique.back().trial == r.trial) {
      if (!(unique.back() == r))
        throw std::runtime_error(
            "build_report: conflicting records for trial " +
            std::to_string(r.trial) +
            " (checkpoints disagree about a deterministic trial)");
      continue;
    }
    unique.push_back(std::move(r));
  }

  CampaignReport rep;
  rep.planned = planned;
  rep.judge_count = judge_count;
  rep.aggregate.assign(judge_count, CampaignResult{});
  std::map<std::string, StratumStats> by_stratum;
  for (const TrialRecord& r : unique) {
    StratumStats& s = by_stratum[r.stratum];
    if (s.sdcs.empty()) {
      s.key = r.stratum;
      s.sdcs.assign(judge_count, 0);
      const auto it = stratum_weights.find(r.stratum);
      if (it != stratum_weights.end()) s.weight = it->second;
    }
    ++s.trials;
    for (std::size_t j = 0; j < judge_count; ++j) {
      rep.aggregate[j].trials += 1;
      const bool sdc = (r.sdc_mask >> j) & 1u;
      rep.aggregate[j].sdcs += sdc ? 1 : 0;
      s.sdcs[j] += sdc ? 1 : 0;
    }
  }
  rep.records = std::move(unique);

  bool all_weighted = !by_stratum.empty();
  rep.strata.reserve(by_stratum.size());
  for (auto& [key, s] : by_stratum) {
    if (s.weight < 0.0) all_weighted = false;
    rep.strata.push_back(std::move(s));
  }
  if (all_weighted) {
    std::vector<double> w;
    std::vector<std::size_t> n;
    for (const StratumStats& s : rep.strata) {
      w.push_back(s.weight);
      n.push_back(s.trials);
    }
    for (std::size_t j = 0; j < judge_count; ++j) {
      std::vector<std::size_t> k;
      for (const StratumStats& s : rep.strata) k.push_back(s.sdcs[j]);
      rep.weighted.push_back(util::stratified95(w, k, n));
    }
  }
  return rep;
}

CampaignReport merge_checkpoints(const std::vector<std::string>& paths,
                                 CheckpointHeader* merged_header) {
  if (paths.empty())
    throw std::invalid_argument("merge_checkpoints: no files");
  std::vector<TrialRecord> records;
  CheckpointHeader first;
  std::map<std::string, double> weights;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    Checkpoint cp = load_checkpoint(paths[i]);
    if (i == 0) {
      first = cp.header;
    } else if (cp.header.fingerprint() != first.fingerprint()) {
      throw std::runtime_error(
          "merge_checkpoints: " + paths[i] +
          " belongs to a different campaign\n  expected " +
          first.fingerprint() + "\n  found    " + cp.header.fingerprint());
    }
    if (weights.empty() && !cp.header.strata_weights.empty())
      weights = parse_strata_weights(cp.header.strata_weights);
    records.insert(records.end(),
                   std::make_move_iterator(cp.records.begin()),
                   std::make_move_iterator(cp.records.end()));
  }
  if (merged_header) {
    *merged_header = first;
    merged_header->shard_index = 0;
    merged_header->shard_count = 1;
    if (!weights.empty())
      merged_header->strata_weights = format_strata_weights(weights);
  }
  return build_report(std::move(records), first.judges,
                      first.trials_per_input * first.inputs, weights);
}

bool records_identical(const std::vector<TrialRecord>& a,
                       const std::vector<TrialRecord>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!(a[i] == b[i])) return false;
  return true;
}

void print_report(const CampaignReport& report,
                  const std::vector<std::string>& judge_labels) {
  const auto label = [&](std::size_t j) {
    return judge_labels.size() == report.judge_count
               ? judge_labels[j]
               : "judge " + std::to_string(j);
  };
  std::printf("trials: %zu executed / %zu planned (%.1f%%)\n",
              report.executed(), report.planned,
              report.planned
                  ? 100.0 * static_cast<double>(report.executed()) /
                        static_cast<double>(report.planned)
                  : 0.0);

  util::Table agg({"metric", "SDCs", "SDC rate (%)", "Wilson 95% (%)",
                   "weighted (%)"});
  for (std::size_t j = 0; j < report.judge_count; ++j) {
    const CampaignResult& r = report.aggregate[j];
    const util::Interval w = r.wilson95();
    std::string weighted = "-";
    if (j < report.weighted.size())
      weighted = util::Table::fmt(100.0 * report.weighted[j].center, 3) +
                 " ±" +
                 util::Table::fmt(100.0 * report.weighted[j].half_width, 3);
    agg.add_row({label(j), std::to_string(r.sdcs),
                 util::Table::fmt(r.sdc_rate_pct(), 3),
                 util::Table::fmt(100.0 * w.center, 3) + " ±" +
                     util::Table::fmt(100.0 * w.half_width, 3),
                 weighted});
  }
  agg.print();

  if (report.strata.empty()) return;
  util::Table st({"stratum (layer:bits)", "weight", "trials",
                  "SDC rate ±95% per metric"});
  for (const StratumStats& s : report.strata) {
    std::string rates;
    for (std::size_t j = 0; j < report.judge_count; ++j) {
      const util::Interval w = s.wilson95(j);
      if (!rates.empty()) rates += "  ";
      rates += util::Table::fmt(100.0 * w.center, 2) + " ±" +
               util::Table::fmt(100.0 * w.half_width, 2);
    }
    st.add_row({s.key,
                s.weight >= 0.0 ? util::Table::fmt(s.weight, 4) : "-",
                std::to_string(s.trials), rates});
  }
  st.print();
}

std::map<std::string, double> parse_strata_weights(const std::string& s) {
  std::map<std::string, double> out;
  std::size_t start = 0;
  while (start < s.size()) {
    std::size_t end = s.find(';', start);
    if (end == std::string::npos) end = s.size();
    const std::string part = s.substr(start, end - start);
    const std::size_t eq = part.rfind('=');
    if (eq != std::string::npos && eq > 0)
      out[part.substr(0, eq)] = std::strtod(part.c_str() + eq + 1, nullptr);
    start = end + 1;
  }
  return out;
}

std::string format_strata_weights(const std::map<std::string, double>& w) {
  std::string out;
  char buf[32];
  for (const auto& [key, weight] : w) {
    if (!out.empty()) out.push_back(';');
    std::snprintf(buf, sizeof buf, "%.9g", weight);
    out += key + "=" + buf;
  }
  return out;
}

}  // namespace rangerpp::fi

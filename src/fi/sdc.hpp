// SDC (silent data corruption) judges: decide whether a faulty output
// constitutes an SDC relative to the fault-free golden output of the same
// model and input (the paper's definition, §III-A).
#pragma once

#include <memory>

#include "tensor/tensor.hpp"

namespace rangerpp::fi {

class SdcJudge {
 public:
  virtual ~SdcJudge() = default;
  virtual bool is_sdc(const tensor::Tensor& golden,
                      const tensor::Tensor& faulty) const = 0;
};

// Classifier, top-1: SDC iff argmax changes.
class Top1Judge final : public SdcJudge {
 public:
  bool is_sdc(const tensor::Tensor& golden,
              const tensor::Tensor& faulty) const override;
};

// Classifier, top-5: SDC iff the fault-free top-1 label leaves the faulty
// top-5 set (the paper's ImageNet top-5 metric).
class Top5Judge final : public SdcJudge {
 public:
  bool is_sdc(const tensor::Tensor& golden,
              const tensor::Tensor& faulty) const override;
};

// Steering model: SDC iff the steering-angle deviation exceeds
// `threshold_degrees`.  When `output_in_radians` is set (Nvidia Dave), the
// scalar outputs are converted to degrees before comparison.
class SteeringJudge final : public SdcJudge {
 public:
  SteeringJudge(double threshold_degrees, bool output_in_radians);
  bool is_sdc(const tensor::Tensor& golden,
              const tensor::Tensor& faulty) const override;

 private:
  double threshold_degrees_;
  bool radians_;
};

using JudgePtr = std::shared_ptr<const SdcJudge>;

}  // namespace rangerpp::fi

// Tolerance-judged equivalence between kernel backends.
//
// The scalar and blocked backends share a byte-for-byte determinism
// contract, enforced with memcmp golden gates.  The simd backend trades
// that away on purpose: its AVX2 GEMM core accumulates lanes with FMA, so
// its conv/matmul outputs can differ from the reference in the last few
// ulps.  This module is the contract it is held to instead — three judges,
// each matched to what a Ranger-style fault-injection study actually
// depends on:
//
//  * compare_tensors: per-element closeness (abs tolerance OR ulp
//    distance), for clean-run activations and outputs;
//  * argmax_agreement: top-1 classification agreement, the unit of SDC
//    accounting — rounding that never moves the argmax cannot change an
//    SDC verdict;
//  * rates_statistically_equal: campaign-level SDC-rate equality, judged
//    by overlapping Wilson 95% intervals (the paper's own error-bar
//    machinery) — the end-to-end statement that backend choice does not
//    move the science.
//
// Everything here is a pure function; no backend code is referenced, so
// tests and benches can judge any pair of runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "tensor/dtype.hpp"
#include "tensor/tensor.hpp"

namespace rangerpp::fi {

// Per-element tolerance: an element pair passes when |a - b| <= abs_tol
// OR ulp_distance(a, b) <= max_ulps.  The OR matters: an absolute bound
// alone is meaningless for large magnitudes, a ulp bound alone is brutal
// near zero.
struct ToleranceSpec {
  double abs_tol = 1e-4;
  std::uint32_t max_ulps = 256;

  // Tolerance matched to a quantisation scheme: `steps` resolution steps
  // of absolute slack (quantised values differing by <= steps codes pass
  // on the abs branch regardless of ulp distance).
  static ToleranceSpec for_scheme(const tensor::QScheme& scheme,
                                  int steps = 2);
};

struct TensorCompareReport {
  std::size_t compared = 0;
  std::size_t mismatched = 0;  // elements outside both tolerance branches
  double max_abs_diff = 0.0;
  std::uint32_t max_ulp_diff = 0;  // saturates at UINT32_MAX (NaN vs non-NaN)
  bool within = false;             // mismatched == 0 and shapes matched
};

// Element-wise comparison of two same-shaped tensors under `tol`.
// Both-NaN pairs are equal (the codecs round-trip NaN deterministically);
// a NaN/non-NaN pair is an unconditional mismatch.
TensorCompareReport compare_tensors(const tensor::Tensor& a,
                                    const tensor::Tensor& b,
                                    const ToleranceSpec& tol);

// Fraction of output pairs whose argmax agrees (1.0 when both spans are
// empty).  Ties break toward the lowest index in both, matching the
// harness's top1 rule, so a tie is only a disagreement if the tied sets
// differ.
double argmax_agreement(std::span<const tensor::Tensor> a,
                        std::span<const tensor::Tensor> b);

// True when the Wilson 95% intervals of two SDC proportions overlap —
// the acceptance test for "backend B reproduces backend A's SDC rate".
bool rates_statistically_equal(std::size_t sdcs_a, std::size_t trials_a,
                               std::size_t sdcs_b, std::size_t trials_b);

}  // namespace rangerpp::fi

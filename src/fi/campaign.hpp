// Fault-injection campaign runner (the TensorFI-equivalent experiment
// driver).  A campaign runs N independent trials per input; each trial
// samples a fault set, executes the graph with the injection hook, and
// judges SDC against the golden (fault-free) output under the *same*
// datatype.  Trials are distributed over a thread pool and are
// deterministic given the campaign seed.
//
// Execution is compiled: the graph is lowered once into an ExecutionPlan,
// the golden activations of every input are cached once, and each trial
// resumes from its injected node via Executor::run_from — only the fault's
// downstream cone is recomputed (and of that, only until the fault is
// masked), bit-identical to full re-execution for the same seed.  Each
// worker thread owns a private Arena, so steady-state trials share no
// mutable state.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "fi/fault_model.hpp"
#include "fi/sdc.hpp"
#include "graph/executor.hpp"
#include "util/stats.hpp"

namespace rangerpp::fi {

struct CampaignConfig {
  tensor::DType dtype = tensor::DType::kFixed32;
  int n_bits = 1;                   // flips per trial (multi-bit: 2-5)
  // Multi-bit mode: false = independent flips in independently chosen
  // values (the paper's conservative default, §VI-B); true = a burst of
  // adjacent bits within one value (Yang et al. [58]).
  bool consecutive_bits = false;
  std::size_t trials_per_input = 1000;
  std::uint64_t seed = 42;
  unsigned threads = 0;             // 0 = hardware concurrency
  // Golden-prefix partial re-execution (the default).  false forces a full
  // graph execution per trial — only useful for A/B benchmarking the
  // speedup; results are bit-identical either way.
  bool partial_reexecution = true;
};

using Feeds = std::unordered_map<std::string, tensor::Tensor>;

struct CampaignResult {
  std::size_t trials = 0;
  std::size_t sdcs = 0;

  double sdc_rate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(sdcs) /
                             static_cast<double>(trials);
  }
  double sdc_rate_pct() const { return 100.0 * sdc_rate(); }
  // 95% CI half-width, in percent (the paper's error bars).
  double ci95_pct() const {
    return 100.0 * util::ci95_proportion(sdcs, trials);
  }
};

class Campaign {
 public:
  explicit Campaign(CampaignConfig config) : config_(config) {}

  // Runs the campaign on `g` for every input in `inputs`.
  CampaignResult run(const graph::Graph& g,
                     const std::vector<Feeds>& inputs,
                     const SdcJudge& judge) const;

  // As `run`, but evaluates several judges on the same trials (e.g. the
  // four steering-deviation thresholds of Fig 7, or top-1 and top-5 for
  // the ImageNet models) — one execution per trial instead of one per
  // judge.  Returns one result per judge.
  std::vector<CampaignResult> run_multi(
      const graph::Graph& g, const std::vector<Feeds>& inputs,
      const std::vector<JudgePtr>& judges) const;

  // Paired run: evaluates the same sampled fault sets on both graphs
  // (matched by node name), returning per-trial outcomes.  Used for the
  // technique-comparison experiment (Table VI), where coverage is the
  // fraction of baseline-SDC trials that the protected/detected variant
  // rectifies or flags.
  struct PairedOutcome {
    bool sdc_unprotected = false;
    bool sdc_protected = false;
    bool detected = false;  // set when a detector hook is supplied
  };
  // `detector` (optional) runs on the protected graph and returns whether
  // the fault was detected for that trial.
  using DetectorFactory = std::function<std::function<bool(
      const graph::Graph&, const Feeds&, const FaultSet&)>()>;
  std::vector<PairedOutcome> run_paired(
      const graph::Graph& unprotected, const graph::Graph& protected_g,
      const std::vector<Feeds>& inputs, const SdcJudge& judge,
      const std::function<bool(const graph::Graph&, const Feeds&,
                               const FaultSet&)>& detector = nullptr) const;

  const CampaignConfig& config() const { return config_; }

 private:
  CampaignConfig config_;
};

}  // namespace rangerpp::fi

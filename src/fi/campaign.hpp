// Fault-injection campaign engine (the TensorFI-equivalent experiment
// driver), layered so the in-process Campaign API and the resumable
// CampaignRunner (runner.hpp) share the exact same deterministic core:
//
//  * trial generation  — TrialPlanner: pure function of (config, trial
//    index) → fault set + input index + stratum, so any subset of trials
//    (a shard, a resumed tail) reproduces bit-identically on any machine;
//  * execution         — TrialExecutor: compiled ExecutionPlan, cached
//    golden activations, per-worker Arenas, golden-prefix partial
//    re-execution via Executor::run_from;
//  * aggregation       — CampaignResult here for raw counts; the richer
//    per-stratum / checkpointed reports live in report.hpp.
//
// Campaign (below) composes planner + executor over a thread pool and is
// what the paper-figure benches historically ran on; CampaignRunner adds
// sharding, JSONL checkpoint/resume and confidence-interval-driven early
// stopping on top of the same layers.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "fi/fault_model.hpp"
#include "fi/sdc.hpp"
#include "fi/weight_fault.hpp"
#include "graph/executor.hpp"
#include "graph/plan.hpp"
#include "util/stats.hpp"

namespace rangerpp::fi {

struct CampaignConfig {
  tensor::DType dtype = tensor::DType::kFixed32;
  int n_bits = 1;                   // flips per trial (multi-bit: 2-5)
  // Multi-bit mode: false = independent flips in independently chosen
  // values (the paper's conservative default, §VI-B); true = a burst of
  // adjacent bits within one value (Yang et al. [58]).
  bool consecutive_bits = false;
  std::size_t trials_per_input = 1000;
  std::uint64_t seed = 42;
  unsigned threads = 0;             // 0 = hardware concurrency
  // Golden-prefix partial re-execution (the default).  false forces a full
  // graph execution per trial — only useful for A/B benchmarking the
  // speedup; results are bit-identical either way.
  bool partial_reexecution = true;
  // Kernel backend the campaign's plans compile under; a pure performance
  // knob (backends are bit-identical, see ops/backend.hpp), so it is
  // excluded from checkpoint fingerprints.
  ops::KernelBackend backend = ops::default_backend();
  // Trials executed per plan run: up to `batch` same-input trials ride one
  // batched plan execution, each in its own batch row, amortising plan
  // dispatch and letting the blocked kernels work on wider blocks.  Also
  // bit-identical to per-trial execution (rows are independent) and
  // excluded from fingerprints.  1 disables batching; graphs that cannot
  // compile batched (see plan_supports_batch) fall back to per-trial runs.
  std::size_t batch = 8;

  // ---- Weight-memory fault campaigns (fault_class == kWeight) ----------
  // Persistent parameter corruption instead of transient activation
  // flips.  The trial stream is an *input sweep*: trial t applies fault
  // t / n_inputs to input t % n_inputs, so the n_inputs consecutive
  // trials of one fault share a single set of patched const tensors
  // (TrialExecutor::patch_consts) — one corruption amortised over every
  // input, no per-trial plan recompilation.  trials_per_input therefore
  // counts the *faults* each input sees; the campaign size
  // trials_per_input × n_inputs is unchanged.  Batched plan riding is
  // disabled under kWeight (batch rows share the const tensors, so two
  // faults cannot ride one run); `weight_fault`/`ecc` are fingerprinted
  // (report.hpp) while `batch`/`backend` stay performance-only.
  FaultClass fault_class = FaultClass::kActivation;
  WeightFaultModel weight_fault;  // used when fault_class == kWeight
  EccModel ecc;                   // filters sampled weight faults

  // ---- int8 calibration (dtype == kInt8 only) --------------------------
  // Per-node activation formats (node name -> format), normally
  // core::int8_calibration(bounds) from the model's RangeProfiler bounds —
  // the same bounds Ranger derives its restriction thresholds from.
  // Forwarded into PlanOptions::int8_formats; ignored for other dtypes.
  // Deterministic given (model, seed, inputs), so it needs no checkpoint
  // fingerprint entry of its own: `dtype` already covers it.
  std::unordered_map<std::string, tensor::FixedPointFormat> int8_formats;

  // Run the static plan verifier (graph/verify.hpp) on every plan this
  // campaign compiles, even in release builds where compilation skips it
  // by default.  A violated invariant throws std::logic_error out of
  // TrialExecutor construction instead of producing silently wrong trial
  // records.  Pure diagnostics: verification never mutates the plan, so
  // it is excluded from checkpoint fingerprints.
  bool verify_plan = false;
};

using Feeds = std::unordered_map<std::string, tensor::Tensor>;

struct CampaignResult {
  std::size_t trials = 0;
  std::size_t sdcs = 0;

  double sdc_rate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(sdcs) /
                             static_cast<double>(trials);
  }
  double sdc_rate_pct() const { return 100.0 * sdc_rate(); }
  // 95% CI half-width, in percent (the paper's error bars).
  double ci95_pct() const {
    return 100.0 * util::ci95_proportion(sdcs, trials);
  }
  // Wilson score interval (fractions); better behaved near rate 0.
  util::Interval wilson95() const { return util::wilson95(sdcs, trials); }
};

// ---- Trial generation layer -------------------------------------------------

// Stratified sampling over (layer, bit-group) strata: trial t is assigned
// round-robin to stratum t % strata_count() and sampled *within* it, so
// every layer/bit-position class is covered evenly regardless of layer
// size.  Off (uniform-over-elements sampling, the paper's default) unless
// `enabled`.  Requires n_bits == 1 and !consecutive_bits.
struct StratifiedOptions {
  bool enabled = false;
  // Bit positions are grouped into ceil(dtype_bits / bit_group_size)
  // classes per layer; 8 gives 4 strata per layer under fixed32.
  int bit_group_size = 8;
};

// What one trial does, fully determined by (config, trial index).
struct TrialSpec {
  std::size_t trial = 0;
  std::size_t input = 0;    // index into the campaign's input list
  std::size_t stratum = 0;  // index into the planner's strata
  FaultSet faults;          // sampled faults (recorded in checkpoints)
  // Faults that actually corrupt state after ECC filtering — what the
  // executor applies.  Equal to `faults` for activation campaigns and
  // for weight campaigns without ECC; may be empty when SEC-DED corrects
  // the whole sample (the trial then reproduces the golden output by
  // construction).
  FaultSet applied;
};

class TrialPlanner {
 public:
  TrialPlanner(const graph::Graph& g, const CampaignConfig& config,
               std::size_t n_inputs, StratifiedOptions stratified = {});

  std::size_t total_trials() const {
    return n_inputs_ * config_.trials_per_input;
  }
  // Pure: plan(t) depends only on the constructor arguments, never on
  // which other trials ran — the property sharding and resume rely on.
  TrialSpec plan(std::size_t t) const;

  // Strata are defined for both sampling modes (uniform trials are
  // post-stratified by their sampled fault), keyed "node:bLO-HI" — over
  // operator-output sites for activation campaigns, over Const-tensor
  // sites for weight campaigns.
  std::size_t strata_count() const { return strata_.size(); }
  const std::string& stratum_key(std::size_t s) const {
    return strata_[s].key;
  }
  // Probability mass of a stratum under the uniform site distribution
  // (element share × bit share); weights sum to 1 and turn per-stratum
  // rates back into an unbiased aggregate under stratified sampling.
  double stratum_weight(std::size_t s) const { return strata_[s].weight; }

  // Activation campaigns only (the planner builds exactly one space).
  const SiteSpace& sites() const { return *sites_; }
  // Weight campaigns only.
  const WeightSiteSpace& weight_sites() const { return *wsites_; }
  const CampaignConfig& config() const { return config_; }
  const StratifiedOptions& stratified() const { return stratified_; }

 private:
  std::size_t stratum_of(const FaultSet& faults) const;
  std::size_t stratum_for_index(std::size_t t) const;

  struct Stratum {
    std::string key;
    std::size_t site = 0;  // SiteSpace site index
    int bit_lo = 0;
    int bit_span = 1;
    double weight = 0.0;
  };

  CampaignConfig config_;
  std::size_t n_inputs_;
  StratifiedOptions stratified_;
  std::optional<SiteSpace> sites_;         // activation campaigns
  std::optional<WeightSiteSpace> wsites_;  // weight campaigns
  std::vector<Stratum> strata_;
  std::size_t bit_groups_ = 1;
};

// ---- Execution layer --------------------------------------------------------

// Owns everything one campaign needs to execute trials: the compiled
// plans (single-image, and — when CampaignConfig::batch > 1 and the graph
// is batchable — a batched twin), the per-input golden outputs +
// activation snapshots, and one private Arena per worker.  run_trial and
// run_trial_batch are safe to call concurrently for distinct `worker`
// values.
class TrialExecutor {
 public:
  // `inputs` must outlive the executor.  `workers` sizes the arena pool
  // (use util::worker_count).
  TrialExecutor(const graph::Graph& g, const CampaignConfig& config,
                const std::vector<Feeds>& inputs, unsigned workers);

  // Applies `faults` to input `input_idx` and returns the faulty output,
  // resuming from the cached golden activations (or a full plan run when
  // partial re-execution is disabled) — bit-identical either way.
  tensor::Tensor run_trial(unsigned worker, std::size_t input_idx,
                           const FaultSet& faults) const;

  // Trials one batched plan run can carry (1 = batching unavailable:
  // config.batch == 1 or the graph is not batchable).
  std::size_t batch() const { return batch_plan_ ? config_.batch : 1; }

  // Executes row_faults.size() (<= batch()) same-input trials as one
  // batched plan run — trial b rides batch row b — and returns each
  // trial's output.  Bit-identical to run_trial per trial: rows are
  // independent, golden-prefix partial re-execution included (the batched
  // golden is the single-image golden tiled across rows, and the
  // element-sparse change tracking keeps each row's recomputation exactly
  // what its single-image trial would do).
  std::vector<tensor::Tensor> run_trial_batch(
      unsigned worker, std::size_t input_idx,
      std::span<const FaultSet> row_faults) const;

  // --- Weight-fault trials (fault_class == kWeight) ---------------------

  // One fault's patched parameter state: the corrupted const tensors and
  // their injection-root node ids, built once per fault and reused across
  // the whole input sweep.
  struct PatchedConsts {
    std::vector<graph::ConstOverride> overrides;
    std::vector<graph::NodeId> roots;
  };

  // Resolves `applied` (the post-ECC fault set) against this executor's
  // plan by node name; unknown names are ignored (cross-graph replay).
  // An ECC-corrected (empty) set yields an empty patch.
  PatchedConsts patch_consts(const FaultSet& applied) const;

  // Runs input `input_idx` under one fault's patched consts, resuming
  // from the cached goldens (only the consts' downstream cones recompute)
  // or re-running the full plan when partial re-execution is disabled —
  // bit-identical either way.  An empty patch returns the golden output
  // outright (ECC corrected the fault before it touched memory).
  tensor::Tensor run_weight_trial(unsigned worker, std::size_t input_idx,
                                  const PatchedConsts& patch) const;

  const tensor::Tensor& golden_output(std::size_t input_idx) const {
    return golden_[input_idx].output;
  }
  const graph::ExecutionPlan& plan() const { return plan_; }
  const CampaignConfig& config() const { return config_; }
  // Worker slots this executor was sized for (run_trial's `worker` must
  // stay below it) — callers sharing one executor across campaigns (the
  // suite) use it to cap their parallelism.
  unsigned workers() const { return static_cast<unsigned>(arenas_.size()); }

 private:
  struct GoldenState {
    tensor::Tensor output;
    std::vector<tensor::Tensor> activations;  // shared-storage snapshot
  };

  CampaignConfig config_;
  const std::vector<Feeds>* inputs_;
  graph::Executor exec_;
  graph::ExecutionPlan plan_;
  std::vector<GoldenState> golden_;
  mutable std::vector<graph::Arena> arenas_;
  // Batched execution state (null/empty when batch() == 1).
  std::unique_ptr<graph::ExecutionPlan> batch_plan_;
  std::vector<std::vector<tensor::Tensor>> batch_golden_;  // per input
  std::vector<Feeds> batch_feeds_;                         // per input
  mutable std::vector<graph::Arena> batch_arenas_;
};

// ---- In-process campaign API ------------------------------------------------

class Campaign {
 public:
  explicit Campaign(CampaignConfig config) : config_(config) {}

  // Runs the campaign on `g` for every input in `inputs`.
  CampaignResult run(const graph::Graph& g,
                     const std::vector<Feeds>& inputs,
                     const SdcJudge& judge) const;

  // As `run`, but evaluates several judges on the same trials (e.g. the
  // four steering-deviation thresholds of Fig 7, or top-1 and top-5 for
  // the ImageNet models) — one execution per trial instead of one per
  // judge.  Returns one result per judge.
  std::vector<CampaignResult> run_multi(
      const graph::Graph& g, const std::vector<Feeds>& inputs,
      const std::vector<JudgePtr>& judges) const;

  // Paired run: evaluates the same sampled fault sets on both graphs
  // (matched by node name), returning per-trial outcomes.  Used for the
  // technique-comparison experiment (Table VI), where coverage is the
  // fraction of baseline-SDC trials that the protected/detected variant
  // rectifies or flags.
  struct PairedOutcome {
    bool sdc_unprotected = false;
    bool sdc_protected = false;
    bool detected = false;  // set when a detector hook is supplied
  };
  // `detector` (optional) runs on the protected graph and returns whether
  // the fault was detected for that trial.
  using DetectorFactory = std::function<std::function<bool(
      const graph::Graph&, const Feeds&, const FaultSet&)>()>;
  std::vector<PairedOutcome> run_paired(
      const graph::Graph& unprotected, const graph::Graph& protected_g,
      const std::vector<Feeds>& inputs, const SdcJudge& judge,
      const std::function<bool(const graph::Graph&, const Feeds&,
                               const FaultSet&)>& detector = nullptr) const;

  const CampaignConfig& config() const { return config_; }

 private:
  CampaignConfig config_;
};

}  // namespace rangerpp::fi

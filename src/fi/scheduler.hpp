// fi::Scheduler — the resident campaign engine behind scheduler_cli's
// daemon mode.  One process accepts many concurrent campaign/suite
// requests, compiles each through the existing fi::Suite grid
// (compile_suite), and multiplexes every request's cells across one
// worker pool:
//
//  * Work units and stealing — each cell is split into a fixed number
//    of deterministic shard partitions (trial t belongs to partition
//    t % P, the CampaignRunner shard rule), and each (request, cell,
//    partition) unit executes in bounded slices
//    (RunnerConfig::max_new_trials).  Units live in per-worker deques;
//    an idle worker steals from the others' tails.  Stealing and slice
//    interleaving are pure scheduling: every record is a function of
//    (campaign fingerprint, trial index) alone, so the merged stream is
//    byte-identical to a one-shot suite_cli run regardless of worker
//    count, steal order, or where a slice boundary fell.
//  * Shared engine caches — workloads (models::WorkloadCache, now safe
//    for concurrent readers), derived bounds, Ranger-protected graphs,
//    compiled TrialExecutors and unprotected goldens are shared across
//    *requests*, keyed by everything that determines them (seed,
//    inputs, model, act, dtype, variant) and built at most once under
//    per-entry once_flags.  Executors are sized with one arena per
//    scheduler worker; a runner slice pins itself to its worker's arena
//    via RunContext::worker_base.
//  * Streaming — each slice's newly available records are handed to the
//    request's RecordSink (scheduler_cli forwards them to the client as
//    binary codec frames) together with the cell's export-form header.
//  * Crash recovery — units checkpoint through the ordinary
//    CampaignRunner resume path (binary ".rcp" checkpoint-v2 files,
//    record_codec.hpp), so a killed worker — or a SIGKILLed daemon —
//    loses at most the slice in flight; resubmitting the same spec
//    resumes from the surviving checkpoints with no lost or duplicated
//    trials.  cancel() stops a request at slice boundaries and leaves
//    its checkpoints resumable the same way.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "fi/suite.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace rangerpp::fi {

struct SchedulerConfig {
  unsigned workers = 0;  // worker threads; 0 = hardware concurrency

  // Deterministic shard partitions per cell — the work-stealing grain.
  // Fixed independently of the worker count (partitioning must not
  // change the checkpoint layout when the pool is resized between
  // runs); more partitions = finer stealing, more checkpoint files.
  std::size_t partitions_per_cell = 4;

  // Trials a unit executes per scheduling slice before it re-queues
  // (fairness between concurrent requests, and the granularity of loss
  // on a kill).  0 = run each partition to completion in one slice.
  // In-memory mode (no checkpoint_dir) always runs whole partitions: a
  // slice boundary without a checkpoint would forget its records.
  std::size_t slice_trials = 256;

  // Directory for per-unit binary checkpoints
  // (<name>.<cell-id>.s<p>of<P>.rcp); empty = in-memory only, no crash
  // recovery.  Requests resume from whatever matching checkpoints the
  // directory already holds — the daemon-restart recovery path.
  std::string checkpoint_dir;

  // Statically verify every compiled cell plan (graph::verify_plan)
  // when its executor is first built — one cheap check per cached
  // executor, so a malformed grid submission is refused with a
  // diagnostic (the request settles kFailed) instead of producing
  // wrong records.  Debug builds verify regardless (the compiler's
  // own debug-default); this knob forces it in release daemons.
  bool verify_plans = false;

  // A resident daemon must not grow without bound: each submit() reaps
  // the oldest *settled* requests beyond this many, dropping them (and
  // their buffered records) entirely — their ids then read as unknown.
  // Running requests are never reaped.  Size this above the number of
  // settled requests whose records/status callers may still come back
  // for; 0 keeps only running requests.
  std::size_t settled_retention = 64;
};

enum class RequestState { kRunning, kDone, kCancelled, kFailed };
std::string_view request_state_token(RequestState s);

struct RequestStatus {
  std::uint64_t id = 0;
  std::string name;
  RequestState state = RequestState::kRunning;
  std::size_t cells = 0;
  std::size_t planned_trials = 0;
  // Records delivered to the sink so far (includes records recovered
  // from checkpoints — the client-visible stream position).
  std::size_t streamed_trials = 0;
  std::string error;  // non-empty when state == kFailed
};

// Incremental record delivery: called with each slice's newly available
// records for one cell (ascending trial order within a call; calls for
// different partitions of a cell interleave).  Serialised per request —
// implementations need no locking of their own — but must not call back
// into the scheduler.  `header` is the cell's export-form (shard 0/1)
// header, constant across calls.
using RecordSink = std::function<void(
    std::size_t cell_index, const CheckpointHeader& header,
    const std::vector<TrialRecord>& records)>;

class Scheduler {
 public:
  // `shared_workloads` (optional) seeds the engine's workload caches:
  // requests whose (seed, inputs) match its options reuse it, others
  // get per-(seed, inputs) caches owned by the scheduler.  Must outlive
  // the scheduler.
  explicit Scheduler(SchedulerConfig config,
                     models::WorkloadCache* shared_workloads = nullptr);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Validates and enqueues a request; returns its id.  Throws
  // std::invalid_argument on a bad spec, a spec with shard_count != 1
  // (the scheduler owns partitioning), or a name already running (two
  // live requests with one name would share checkpoint files).  The
  // spec's checkpoint_dir / max_new_trials / threads are scheduler
  // concerns and are overridden.
  std::uint64_t submit(SuiteSpec spec, RecordSink sink = nullptr);

  std::optional<RequestStatus> status(std::uint64_t id) const;
  std::vector<RequestStatus> status_all() const;

  // Requests cancellation; in-flight slices finish (their records
  // stream and checkpoint), queued work is dropped.  Checkpoints stay
  // resumable: resubmitting the same spec later completes the request.
  // False when the id is unknown or the request already settled.
  bool cancel(std::uint64_t id);

  // Blocks until the request settles and returns its per-cell reports
  // (partial for a cancelled request).  Throws std::runtime_error when
  // the request failed, with the failure message.
  SuiteResult wait(std::uint64_t id);

  // The export-form (shard 0/1) header of a cell — what to_jsonl pairs
  // with the request's records to reproduce the one-shot checkpoint.
  // Valid once any slice of the cell has run; throws otherwise.
  CheckpointHeader cell_header(std::uint64_t id,
                               std::size_t cell_index) const;

  // Writes each cell of a settled request to
  // <dir>/<name>.<cell-id>.s0of1.jsonl — byte-identical to the
  // checkpoints a one-shot unsharded suite_cli run of the same spec
  // writes (the determinism gate's cmp target).  Returns the paths in
  // cell order.  Throws after release() dropped the records.
  std::vector<std::string> export_request_jsonl(std::uint64_t id,
                                                const std::string& dir);

  // Drops a settled request's buffered records and work units, keeping
  // its lightweight status (state/streamed counts) queryable until the
  // retention reaper evicts it.  The daemon calls this once a client's
  // stream is fully delivered — the client holds the records, and any
  // on-disk checkpoints stay resumable.  False when the id is unknown
  // or the request is still running.
  bool release(std::uint64_t id);

  // Stops the workers after their current slices; queued units are
  // abandoned (checkpoints resumable) and unfinished requests settle as
  // kFailed so waiters wake.  Idempotent; the destructor calls it.
  void shutdown();

  // Test/fault-drill hook: worker `w` executes `slices` more slices,
  // then "dies" — its final slice's records are dropped before
  // streaming (they survive only in the unit's checkpoint, as with a
  // real kill) and the worker exits, leaving its unit for the survivors
  // to adopt and resume.
  void kill_worker_after(unsigned worker, std::size_t slices);

  unsigned worker_count() const { return workers_; }
  const SchedulerConfig& config() const { return config_; }

  // Live engine statistics as one JSON object: worker count and uptime,
  // slices/steals/trials executed (with trials/sec), per-worker busy
  // fractions, queue depths and request-state counts — plus the global
  // util/metrics snapshot when metrics are enabled.  Counters are
  // scheduler-owned atomics, so the figures are live regardless of the
  // metrics flag; the `stats` IPC verb returns exactly this string.
  std::string stats_json();

 private:
  struct Engine;   // shared cross-request caches (scheduler.cpp)
  struct Request;  // per-request state (scheduler.cpp)
  struct Unit;     // one (request, cell, partition) work unit

  void worker_loop(unsigned w);
  Unit* next_unit(unsigned w);
  void enqueue(Unit* u, unsigned hint);
  // Executes one slice; returns true when the unit has no work left.
  // `suppress_stream` models a worker dying after the checkpoint write
  // but before delivery.
  bool run_unit_slice(unsigned w, Unit& u, bool suppress_stream);
  // Builds (once) and returns the cell's export-form header.
  const CheckpointHeader& ensure_cell_header(Request& req, std::size_t ci);
  void settle_unit(Unit* u);
  void fail_request(Request& req, const std::string& error);
  // Shared ownership: the retention reaper may erase a settled request
  // from the map while a concurrent status/wait/export still holds it.
  std::shared_ptr<Request> find_request(std::uint64_t id) const
      RANGERPP_EXCLUDES(requests_mu_);
  RequestStatus status_of(Request& req) const;
  void reap_settled() RANGERPP_REQUIRES(requests_mu_);

  SchedulerConfig config_;
  unsigned workers_ = 1;
  std::unique_ptr<Engine> engine_;

  mutable util::Mutex requests_mu_;
  std::uint64_t next_id_ RANGERPP_GUARDED_BY(requests_mu_) = 1;
  std::map<std::uint64_t, std::shared_ptr<Request>> requests_
      RANGERPP_GUARDED_BY(requests_mu_);

  util::Mutex queue_mu_;
  util::CondVar queue_cv_;
  std::vector<std::deque<Unit*>> queues_ RANGERPP_GUARDED_BY(queue_mu_);
  bool shutdown_ RANGERPP_GUARDED_BY(queue_mu_) = false;

  std::vector<std::unique_ptr<std::atomic<std::size_t>>> kill_after_;
  std::vector<std::thread> threads_;

  // Telemetry (stats_json): pure observers of the scheduling loop —
  // never read by any scheduling decision.
  util::Timer uptime_;
  std::atomic<std::uint64_t> slices_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> trials_executed_{0};
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> busy_us_;
};

// ---- Request wire format ----------------------------------------------------

// The scheduler protocol's spec serialisation: "key=value" lines (one
// per field, grid axes comma-separated, fault models in the
// fault_spec_token grammar).  parse_suite_spec is strict — an unknown
// key or malformed value throws std::invalid_argument with the
// offending line — and round-trips serialize_suite_spec exactly.
std::string serialize_suite_spec(const SuiteSpec& spec);
SuiteSpec parse_suite_spec(std::string_view text);

}  // namespace rangerpp::fi

#include "fi/equivalence.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "graph/executor.hpp"
#include "util/stats.hpp"

namespace rangerpp::fi {

namespace {

// Sign-magnitude float bits mapped onto a monotone unsigned scale, so the
// ulp distance of two finite floats is plain unsigned subtraction (the
// classic trick; handles mixed signs and ±0 correctly — +0 and -0 are one
// step apart, which the abs branch forgives).
std::uint32_t monotone_bits(float v) {
  const auto bits = std::bit_cast<std::uint32_t>(v);
  return (bits & 0x80000000u) ? 0x80000000u - (bits & 0x7fffffffu)
                              : 0x80000000u + bits;
}

std::uint32_t ulp_distance(float a, float b) {
  const std::uint32_t ma = monotone_bits(a);
  const std::uint32_t mb = monotone_bits(b);
  return ma > mb ? ma - mb : mb - ma;
}

}  // namespace

ToleranceSpec ToleranceSpec::for_scheme(const tensor::QScheme& scheme,
                                        int steps) {
  ToleranceSpec tol;
  if (scheme.dtype != tensor::DType::kFloat32)
    tol.abs_tol = scheme.fmt.resolution() * static_cast<double>(steps);
  return tol;
}

TensorCompareReport compare_tensors(const tensor::Tensor& a,
                                    const tensor::Tensor& b,
                                    const ToleranceSpec& tol) {
  TensorCompareReport r;
  if (a.elements() != b.elements()) return r;  // within stays false
  const std::span<const float> av = a.values();
  const std::span<const float> bv = b.values();
  r.compared = av.size();
  for (std::size_t i = 0; i < av.size(); ++i) {
    const float x = av[i], y = bv[i];
    const bool nx = std::isnan(x), ny = std::isnan(y);
    if (nx || ny) {
      if (nx != ny) {
        ++r.mismatched;
        r.max_ulp_diff = UINT32_MAX;
      }
      continue;  // both NaN: equal by contract
    }
    const double ad = std::abs(static_cast<double>(x) -
                               static_cast<double>(y));
    const std::uint32_t ud = ulp_distance(x, y);
    r.max_abs_diff = std::max(r.max_abs_diff, ad);
    r.max_ulp_diff = std::max(r.max_ulp_diff, ud);
    if (!(ad <= tol.abs_tol || ud <= tol.max_ulps)) ++r.mismatched;
  }
  r.within = r.mismatched == 0;
  return r;
}

double argmax_agreement(std::span<const tensor::Tensor> a,
                        std::span<const tensor::Tensor> b) {
  if (a.size() != b.size())
    throw std::invalid_argument("argmax_agreement: size mismatch");
  if (a.empty()) return 1.0;
  std::size_t agree = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (graph::argmax(a[i]) == graph::argmax(b[i])) ++agree;
  return static_cast<double>(agree) / static_cast<double>(a.size());
}

bool rates_statistically_equal(std::size_t sdcs_a, std::size_t trials_a,
                               std::size_t sdcs_b, std::size_t trials_b) {
  const util::Interval ia = util::wilson95(sdcs_a, trials_a);
  const util::Interval ib = util::wilson95(sdcs_b, trials_b);
  return ia.lo() <= ib.hi() && ib.lo() <= ia.hi();
}

}  // namespace rangerpp::fi

// Compact binary record codec — the scheduler's wire format and the
// checkpoint-v2 on-disk format.  JSONL checkpoints spend most of their
// bytes on repeated key strings; at scheduler volumes (many concurrent
// requests streaming every record over a socket) that overhead dominates
// the frames, so records travel and persist in a varint-framed binary
// encoding instead:
//
//   stream  := magic "RPRC" | u32 LE version | varint len | header-body
//              | record*
//   record  := varint len | record-body
//
// Both bodies are sequences of LEB128 varints and length-prefixed
// strings in a fixed field order (see record_codec.cpp).  The per-record
// length prefix makes records self-delimiting the way JSONL lines are
// self-contained: a stream truncated by a killed writer loses at most
// the torn tail record, and decode recovers every whole record before
// it.  A version other than kRecordCodecVersion is refused loudly —
// silently misparsing a future field order would corrupt campaigns.
//
// Losslessness contract: to_jsonl() re-serialises a decoded stream
// through the exact writers report.cpp uses (checkpoint_header_line /
// trial_record_line), so the export is byte-identical to a natively
// written JSONL checkpoint and every existing --merge/--golden/cmp gate
// keeps working on scheduler output.  load_checkpoint() sniffs the
// magic, so .rcp checkpoints are transparently readable wherever JSONL
// ones are.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fi/report.hpp"

namespace rangerpp::fi {

inline constexpr char kRecordCodecMagic[4] = {'R', 'P', 'R', 'C'};
inline constexpr std::uint32_t kRecordCodecVersion = 1;

// True when `bytes` begins with the codec magic — the format sniff
// load_checkpoint uses to route a file to the right decoder.
bool is_binary_checkpoint(std::string_view bytes);

// Runner-side convention: checkpoint paths ending ".rcp" are written in
// the binary format, everything else stays JSONL.
bool binary_checkpoint_path(std::string_view path);

// ---- Encoding ---------------------------------------------------------------

// Appends magic + version + the encoded header to `out`.
void encode_stream_header(std::string& out, const CheckpointHeader& h);

// Appends one length-prefixed record frame to `out`.
void encode_record(std::string& out, const TrialRecord& r);

// Record frames only (no stream header) — the scheduler's wire payload
// for incremental record batches.
std::string encode_records(const std::vector<TrialRecord>& records);

// ---- Decoding ---------------------------------------------------------------

// Decodes a full stream (header + records).  Throws std::runtime_error
// on bad magic, a version mismatch, or a malformed header; a truncated
// record tail is not an error (`torn_tail` reports it) — the valid
// prefix is recovered, mirroring the JSONL torn-final-line behaviour.
struct DecodedStream {
  CheckpointHeader header;
  std::vector<TrialRecord> records;
  bool torn_tail = false;
};
DecodedStream decode_stream(std::string_view bytes);

// Decodes a headerless record sequence (wire frames).  Same torn-tail
// tolerance; throws only on structurally malformed record bodies.
std::vector<TrialRecord> decode_records(std::string_view bytes,
                                        bool* torn_tail = nullptr);

// ---- Files ------------------------------------------------------------------

// Reads a binary checkpoint file; torn tail records are dropped
// silently (the killed-writer signature, exactly as load_checkpoint
// drops a torn final JSONL line).  Throws on open failure or a
// malformed/mismatched stream.
Checkpoint load_binary_checkpoint(const std::string& path);

// ---- Lossless JSONL export --------------------------------------------------

// The JSONL serialisation of (header, records) — byte-identical to a
// checkpoint written natively by write_checkpoint_header +
// append_trial_record.
std::string to_jsonl(const CheckpointHeader& h,
                     const std::vector<TrialRecord>& records);

// Sorts records by trial index and drops exact duplicates; two
// conflicting records for one trial throw (deterministic trials cannot
// disagree).  The client-side normalisation step before export: shard
// partitions stream in index order per partition, so the merged
// ascending sequence is what a one-shot run would have written.
std::vector<TrialRecord> sort_unique_records(
    std::vector<TrialRecord> records);

}  // namespace rangerpp::fi

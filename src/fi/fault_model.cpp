#include "fi/fault_model.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace rangerpp::fi {

float apply_fault_value(tensor::DType dtype, float value,
                        const FaultPoint& f) {
  switch (f.action) {
    case FaultAction::kFlip:
      return tensor::dtype_flip_value(dtype, value, f.bit);
    case FaultAction::kStuck0:
      return tensor::dtype_write_bit_value(dtype, value, f.bit, false);
    case FaultAction::kStuck1:
      return tensor::dtype_write_bit_value(dtype, value, f.bit, true);
  }
  return value;
}

float apply_fault_value(const tensor::QScheme& scheme, float value,
                        const FaultPoint& f) {
  switch (f.action) {
    case FaultAction::kFlip:
      return tensor::q_flip_value(scheme, value, f.bit);
    case FaultAction::kStuck0:
      return tensor::q_write_bit_value(scheme, value, f.bit, false);
    case FaultAction::kStuck1:
      return tensor::q_write_bit_value(scheme, value, f.bit, true);
  }
  return value;
}

SiteSpace::SiteSpace(const graph::Graph& g, tensor::DType dtype)
    : dtype_bits_(tensor::dtype_bits(dtype)) {
  const std::vector<tensor::Shape> shapes = g.infer_shapes();
  for (const graph::Node& n : g.nodes()) {
    if (!n.injectable) continue;
    const std::size_t elems =
        shapes[static_cast<std::size_t>(n.id)].elements();
    if (elems == 0) continue;
    total_ += elems;
    nodes_.push_back(Entry{n.name, elems, total_});
  }
  if (total_ == 0)
    throw std::invalid_argument("SiteSpace: graph has no injectable sites");
}

FaultSet SiteSpace::sample(util::Rng& rng, int n_bits) const {
  if (n_bits < 1) throw std::invalid_argument("SiteSpace::sample: n_bits");
  FaultSet faults;
  faults.reserve(static_cast<std::size_t>(n_bits));
  for (int i = 0; i < n_bits; ++i) {
    const std::size_t pick = rng.uniform_index(total_);
    // Binary search the cumulative ranges.
    const auto it = std::lower_bound(
        nodes_.begin(), nodes_.end(), pick,
        [](const Entry& e, std::size_t v) { return e.cumulative <= v; });
    const Entry& e = *it;
    const std::size_t offset = pick - (e.cumulative - e.elements);
    faults.push_back(FaultPoint{
        e.name, offset,
        static_cast<int>(rng.uniform_index(
            static_cast<std::uint64_t>(dtype_bits_)))});
  }
  return faults;
}

FaultSet SiteSpace::sample_consecutive(util::Rng& rng, int n_bits) const {
  if (n_bits < 1 || n_bits > dtype_bits_)
    throw std::invalid_argument("SiteSpace::sample_consecutive: n_bits");
  // One value, a run of adjacent bits.
  FaultSet one = sample(rng, 1);
  const int start = static_cast<int>(rng.uniform_index(
      static_cast<std::uint64_t>(dtype_bits_ - n_bits + 1)));
  FaultSet faults;
  faults.reserve(static_cast<std::size_t>(n_bits));
  for (int i = 0; i < n_bits; ++i)
    faults.push_back(
        FaultPoint{one[0].node_name, one[0].element, start + i});
  return faults;
}

std::size_t SiteSpace::elements_of(const std::string& node_name) const {
  for (const Entry& e : nodes_)
    if (e.name == node_name) return e.elements;
  return 0;
}

std::size_t SiteSpace::site_index(const std::string& node_name) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].name == node_name) return i;
  return SIZE_MAX;
}

graph::PostOpHook make_injection_hook(const graph::Graph& g,
                                      tensor::DType dtype,
                                      const FaultSet& faults) {
  // Resolve names to node ids once; group fault points per node.
  auto by_node = std::make_shared<
      std::unordered_map<graph::NodeId, std::vector<FaultPoint>>>();
  for (const FaultPoint& f : faults) {
    const graph::NodeId id = g.find(f.node_name);
    if (id == graph::kInvalidNode) continue;
    (*by_node)[id].push_back(f);
  }
  return [by_node, dtype](const graph::Node& node, tensor::Tensor& out) {
    const auto it = by_node->find(node.id);
    if (it == by_node->end()) return;
    for (const FaultPoint& f : it->second) {
      if (f.element >= out.elements()) continue;  // defensive; cannot happen
      out.set(f.element, apply_fault_value(dtype, out.at(f.element), f));
    }
  };
}

graph::PostOpHook make_injection_hook(const graph::ExecutionPlan& plan,
                                      const FaultSet& faults) {
  auto by_node = std::make_shared<
      std::unordered_map<graph::NodeId, std::vector<FaultPoint>>>();
  for (const FaultPoint& f : faults) {
    const graph::NodeId id = plan.graph().find(f.node_name);
    if (id == graph::kInvalidNode) continue;
    (*by_node)[id].push_back(f);
  }
  const graph::ExecutionPlan* p = &plan;
  return [by_node, p](const graph::Node& node, tensor::Tensor& out) {
    const auto it = by_node->find(node.id);
    if (it == by_node->end()) return;
    const tensor::QScheme& scheme = p->qscheme(node.id);
    for (const FaultPoint& f : it->second) {
      if (f.element >= out.elements()) continue;  // defensive; cannot happen
      out.set(f.element, apply_fault_value(scheme, out.at(f.element), f));
    }
  };
}

graph::PostOpHook make_batched_injection_hook(
    const graph::ExecutionPlan& plan, std::span<const FaultSet> row_faults) {
  struct BatchedFault {
    std::size_t element;  // already offset into the batch row
    int bit;
    FaultAction action;
  };
  auto by_node = std::make_shared<
      std::unordered_map<graph::NodeId, std::vector<BatchedFault>>>();
  const graph::Graph& g = plan.graph();
  for (std::size_t b = 0; b < row_faults.size(); ++b) {
    for (const FaultPoint& f : row_faults[b]) {
      const graph::NodeId id = g.find(f.node_name);
      if (id == graph::kInvalidNode) continue;
      const std::size_t per = plan.per_image_elements(id);
      if (f.element >= per) continue;  // defensive; cannot happen
      (*by_node)[id].push_back(
          BatchedFault{b * per + f.element, f.bit, f.action});
    }
  }
  const graph::ExecutionPlan* p = &plan;
  return [by_node, p](const graph::Node& node, tensor::Tensor& out) {
    const auto it = by_node->find(node.id);
    if (it == by_node->end()) return;
    const tensor::QScheme& scheme = p->qscheme(node.id);
    for (const BatchedFault& f : it->second) {
      if (f.element >= out.elements()) continue;
      out.set(f.element,
              apply_fault_value(scheme, out.at(f.element),
                                FaultPoint{"", f.element, f.bit, f.action}));
    }
  };
}

}  // namespace rangerpp::fi

// Weight/parameter-memory fault subsystem.
//
// The paper's fault model (§II-C) assumes ECC-protected memory, so the
// classic campaigns inject only transient flips into operator *outputs*.
// This module relaxes that assumption into a first-class scenario axis:
// persistent corruption of the network's parameters (Const tensors),
// optionally filtered through an explicit ECC model.
//
//  * WeightSiteSpace enumerates the elements of every injectable Const
//    (weight/bias) tensor.  A Const is injectable when at least one of
//    its consumers is an injectable op node — the §V-B last-FC exclusion
//    the model builders already mark propagates to the layer's
//    parameters automatically.
//  * WeightFaultModel picks how a sampled fault perturbs the tensor:
//    single/multi independent bit flips, a consecutive-bit burst within
//    one value (after Yang et al.), stuck-at-0/1 cells, or a row burst —
//    the same bit flipped in consecutive elements along the tensor's
//    innermost dimension (a spatially-correlated DRAM-row failure).
//  * EccModel filters sampled faults before application: SEC-DED
//    corrects any word (= stored value) with exactly one faulty bit and
//    detects-but-passes multi-bit words; a coverage fraction p protects
//    each word with SEC-DED independently with probability p.
//  * make_const_overrides turns the surviving fault set into
//    graph::ConstOverrides against a compiled plan: the pre-quantized
//    const bytes are corrupted once per fault and the same patched
//    tensors are reused across a whole input sweep — no per-trial plan
//    recompilation.  Resolution is by node *name* (via the plan's
//    graph), so a fault stream planned on the unprotected graph replays
//    on its Ranger-protected twin; names absent from the executing
//    graph are ignored, the same cross-graph tolerance contract as
//    make_injection_hook.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fi/fault_model.hpp"
#include "graph/graph.hpp"
#include "graph/plan.hpp"
#include "tensor/dtype.hpp"
#include "util/rng.hpp"

namespace rangerpp::fi {

// Which site population a campaign draws faults from: transient operator-
// output flips (the paper's model) or persistent Const corruption.
enum class FaultClass { kActivation, kWeight };

std::string_view fault_class_token(FaultClass c);
std::optional<FaultClass> fault_class_from_token(std::string_view s);

enum class WeightFaultKind {
  kSingleBit,         // one element, one flipped bit
  kMultiBit,          // n_bits independent (element, bit) flips
  kConsecutiveBurst,  // one element, n_bits adjacent flipped bits
  kStuckAt0,          // one element, one bit stuck at 0
  kStuckAt1,          // one element, one bit stuck at 1
  kRowBurst,          // same bit flipped in n_bits consecutive elements
                      // of one innermost-dimension row
};

std::string_view weight_fault_kind_token(WeightFaultKind k);
std::optional<WeightFaultKind> weight_fault_kind_from_token(
    std::string_view s);

struct WeightFaultModel {
  WeightFaultKind kind = WeightFaultKind::kSingleBit;
  // kMultiBit: independent flips; kConsecutiveBurst: adjacent bits;
  // kRowBurst: consecutive elements.  Ignored by the other kinds.
  int n_bits = 1;
};

// ECC filtering applied to parameter words (one stored value = one ECC
// word) before a sampled fault corrupts memory.
enum class EccKind { kNone, kSecDed, kCoverage };

struct EccModel {
  EccKind kind = EccKind::kNone;
  // kCoverage: fraction of words protected by SEC-DED (0 = none,
  // 1 = full SEC-DED); the per-word decision is drawn from the trial's
  // deterministic stream.
  double coverage = 0.0;
};

// "none" | "secded" | "cov<FRACTION>" (e.g. "cov0.5").
std::string ecc_token(const EccModel& ecc);
std::optional<EccModel> ecc_from_token(std::string_view s);

// Filters a sampled weight-fault set through `ecc`.  Fault points are
// grouped into words by (node, element), in first-occurrence order; a
// SEC-DED-protected word with exactly one fault point is corrected (its
// point is dropped), one with two or more is detected but passes
// uncorrected.  Under kCoverage one bernoulli(coverage) is drawn from
// `rng` per word (in that same deterministic order), so the filtered set
// is a pure function of (sampled set, ecc, rng state).
FaultSet apply_ecc(const FaultSet& faults, const EccModel& ecc,
                   util::Rng& rng);

// Enumerates the injectable weight sites of a graph: every element of
// every Const tensor with at least one injectable consumer.  Sampling is
// uniform over elements, mirroring SiteSpace.
class WeightSiteSpace {
 public:
  // Throws std::invalid_argument when the graph has no injectable
  // Const sites.
  WeightSiteSpace(const graph::Graph& g, tensor::DType dtype);

  // Samples one fault set under `model` (deterministic given the rng
  // state).  Stuck-at points carry FaultAction::kStuck0/kStuck1; all
  // other kinds produce kFlip points.
  FaultSet sample(util::Rng& rng, const WeightFaultModel& model) const;

  std::size_t total_elements() const { return total_; }
  std::size_t injectable_tensors() const { return nodes_.size(); }

  // Element count of a const tensor (0 when not an injectable site).
  std::size_t elements_of(const std::string& node_name) const;

  // Positional access, in graph (topological) order — the basis for the
  // per-(tensor, bit-group) post-stratification of campaign records.
  const std::string& site_name(std::size_t i) const { return nodes_[i].name; }
  std::size_t site_elements(std::size_t i) const {
    return nodes_[i].elements;
  }
  // Innermost-dimension length of a site's tensor (the row of kRowBurst).
  std::size_t site_row_length(std::size_t i) const { return nodes_[i].row; }
  // Index of a const's site (SIZE_MAX when not injectable).
  std::size_t site_index(const std::string& node_name) const;

  int dtype_bits() const { return dtype_bits_; }

 private:
  struct Entry {
    std::string name;
    std::size_t elements;
    std::size_t cumulative;  // inclusive upper bound of this site's range
    std::size_t row;         // innermost-dimension length
  };
  // Uniform element pick resolved to (site, offset).
  std::pair<std::size_t, std::size_t> pick(util::Rng& rng) const;

  std::vector<Entry> nodes_;
  std::size_t total_ = 0;
  int dtype_bits_ = 32;
};

// Patched parameter tensors for one fault: each targeted Const's
// pre-quantized output is cloned once and the fault points applied
// through the datatype codec.  Fault points naming nodes absent from the
// plan's graph, naming non-Const nodes, or addressing elements past the
// tensor's end are ignored (the cross-graph replay contract).  Build
// this once per fault and reuse it across the whole input sweep.
std::vector<graph::ConstOverride> make_const_overrides(
    const graph::ExecutionPlan& plan, const FaultSet& faults);

// Injection roots of a weight fault on `g`: the ids of the targeted
// Const nodes (their reachability cones are exactly the consumers').
// Names absent from `g` are skipped.
std::vector<graph::NodeId> const_fault_roots(const graph::Graph& g,
                                             const FaultSet& faults);

}  // namespace rangerpp::fi

#include "fi/record_codec.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace rangerpp::fi {

namespace {

// Field order of the two body encodings.  Changing either order (or a
// field's representation) is a format change: bump kRecordCodecVersion.
//
//   header-body := str label | u64 seed | str dtype | u64 n_bits
//                | u8 consecutive | str fault_class | str weight_kind
//                | str ecc | u64 trials_per_input | u64 inputs
//                | u64 judges | str sampling | u64 bit_group
//                | u64 shard_index | u64 shard_count | str strata
//   record-body := u64 trial | u64 input | u64 n_faults | fault*
//                | str stratum | u64 sdc_mask
//   fault       := str node_name | u64 element | svar bit | u8 action
//
// u64 = LEB128 varint; svar = zigzag varint; str = varint length + bytes.

constexpr std::size_t kMaxChunk = 1u << 24;  // string/record length cap

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

void put_svarint(std::string& out, std::int64_t v) {
  put_varint(out, (static_cast<std::uint64_t>(v) << 1) ^
                      static_cast<std::uint64_t>(v >> 63));
}

void put_string(std::string& out, std::string_view s) {
  put_varint(out, s.size());
  out.append(s.data(), s.size());
}

// Cursor-style reader over the encoded bytes.  get_* return false on
// truncation (the torn-tail signal); malformed *content* inside a
// complete frame throws at the call sites instead.
struct Reader {
  std::string_view in;

  bool empty() const { return in.empty(); }

  bool get_varint(std::uint64_t& v) {
    v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      if (in.empty()) return false;
      const unsigned char b = static_cast<unsigned char>(in.front());
      in.remove_prefix(1);
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if (!(b & 0x80)) return true;
    }
    return false;  // > 10 bytes: not a varint we ever wrote
  }

  bool get_svarint(std::int64_t& v) {
    std::uint64_t u = 0;
    if (!get_varint(u)) return false;
    v = static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
    return true;
  }

  bool get_string(std::string& s) {
    std::uint64_t len = 0;
    if (!get_varint(len) || len > kMaxChunk || in.size() < len)
      return false;
    s.assign(in.data(), len);
    in.remove_prefix(len);
    return true;
  }

  bool get_byte(std::uint8_t& b) {
    if (in.empty()) return false;
    b = static_cast<std::uint8_t>(in.front());
    in.remove_prefix(1);
    return true;
  }
};

void encode_header_body(std::string& out, const CheckpointHeader& h) {
  put_string(out, h.label);
  put_varint(out, h.seed);
  put_string(out, h.dtype);
  put_varint(out, static_cast<std::uint64_t>(h.n_bits));
  out.push_back(h.consecutive_bits ? 1 : 0);
  put_string(out, h.fault_class);
  put_string(out, h.weight_kind);
  put_string(out, h.ecc);
  put_varint(out, h.trials_per_input);
  put_varint(out, h.inputs);
  put_varint(out, h.judges);
  put_string(out, h.sampling);
  put_varint(out, static_cast<std::uint64_t>(h.bit_group_size));
  put_varint(out, h.shard_index);
  put_varint(out, h.shard_count);
  put_string(out, h.strata_weights);
}

CheckpointHeader decode_header_body(std::string_view body) {
  Reader r{body};
  CheckpointHeader h;
  const auto fail = [] {
    throw std::runtime_error("record_codec: malformed stream header");
  };
  const auto read_u64 = [&](std::uint64_t& out) {
    if (!r.get_varint(out)) fail();
  };
  const auto read_str = [&](std::string& out) {
    if (!r.get_string(out)) fail();
  };
  std::uint64_t u = 0;
  std::uint8_t b = 0;
  read_str(h.label);
  read_u64(h.seed);
  read_str(h.dtype);
  read_u64(u);
  h.n_bits = static_cast<int>(u);
  if (!r.get_byte(b)) fail();
  h.consecutive_bits = b != 0;
  read_str(h.fault_class);
  read_str(h.weight_kind);
  read_str(h.ecc);
  read_u64(u);
  h.trials_per_input = u;
  read_u64(u);
  h.inputs = u;
  read_u64(u);
  h.judges = u;
  read_str(h.sampling);
  read_u64(u);
  h.bit_group_size = static_cast<int>(u);
  read_u64(h.shard_index);
  read_u64(h.shard_count);
  read_str(h.strata_weights);
  if (!r.empty()) fail();
  return h;
}

void encode_record_body(std::string& out, const TrialRecord& r) {
  put_varint(out, r.trial);
  put_varint(out, r.input);
  put_varint(out, r.faults.size());
  for (const FaultPoint& f : r.faults) {
    put_string(out, f.node_name);
    put_varint(out, f.element);
    put_svarint(out, f.bit);
    out.push_back(static_cast<char>(f.action));
  }
  put_string(out, r.stratum);
  put_varint(out, r.sdc_mask);
}

TrialRecord decode_record_body(std::string_view body) {
  Reader r{body};
  TrialRecord rec;
  std::uint64_t u = 0;
  if (!r.get_varint(rec.trial) || !r.get_varint(u))
    throw std::runtime_error("record_codec: malformed record");
  rec.input = static_cast<std::uint32_t>(u);
  std::uint64_t n_faults = 0;
  if (!r.get_varint(n_faults) || n_faults > kMaxChunk)
    throw std::runtime_error("record_codec: malformed record");
  rec.faults.reserve(n_faults);
  for (std::uint64_t i = 0; i < n_faults; ++i) {
    FaultPoint f;
    std::int64_t bit = 0;
    std::uint8_t action = 0;
    if (!r.get_string(f.node_name) || !r.get_varint(u) ||
        !r.get_svarint(bit) || !r.get_byte(action) ||
        action > static_cast<std::uint8_t>(FaultAction::kStuck1))
      throw std::runtime_error("record_codec: malformed fault point");
    f.element = u;
    f.bit = static_cast<int>(bit);
    f.action = static_cast<FaultAction>(action);
    rec.faults.push_back(std::move(f));
  }
  if (!r.get_string(rec.stratum) || !r.get_varint(u) || !r.empty())
    throw std::runtime_error("record_codec: malformed record");
  rec.sdc_mask = static_cast<std::uint32_t>(u);
  return rec;
}

// Pulls the next length-prefixed frame off `in`; false = torn tail
// (incomplete length or body), leaving `in` untouched for the caller to
// report how many bytes were abandoned if it cares.
bool next_frame(std::string_view& in, std::string_view& frame) {
  Reader r{in};
  std::uint64_t len = 0;
  if (!r.get_varint(len)) return false;
  if (len > kMaxChunk)
    throw std::runtime_error("record_codec: oversized record frame");
  if (r.in.size() < len) return false;
  frame = r.in.substr(0, len);
  in = r.in.substr(len);
  return true;
}

}  // namespace

bool is_binary_checkpoint(std::string_view bytes) {
  return bytes.size() >= sizeof kRecordCodecMagic &&
         std::memcmp(bytes.data(), kRecordCodecMagic,
                     sizeof kRecordCodecMagic) == 0;
}

bool binary_checkpoint_path(std::string_view path) {
  return path.ends_with(".rcp");
}

void encode_stream_header(std::string& out, const CheckpointHeader& h) {
  out.append(kRecordCodecMagic, sizeof kRecordCodecMagic);
  for (unsigned i = 0; i < 32; i += 8)
    out.push_back(static_cast<char>((kRecordCodecVersion >> i) & 0xff));
  std::string body;
  encode_header_body(body, h);
  put_varint(out, body.size());
  out += body;
}

void encode_record(std::string& out, const TrialRecord& r) {
  std::string body;
  encode_record_body(body, r);
  put_varint(out, body.size());
  out += body;
}

std::string encode_records(const std::vector<TrialRecord>& records) {
  std::string out;
  for (const TrialRecord& r : records) encode_record(out, r);
  return out;
}

DecodedStream decode_stream(std::string_view bytes) {
  if (!is_binary_checkpoint(bytes))
    throw std::runtime_error("record_codec: missing stream magic");
  bytes.remove_prefix(sizeof kRecordCodecMagic);
  if (bytes.size() < 4)
    throw std::runtime_error("record_codec: truncated version field");
  std::uint32_t version = 0;
  for (unsigned i = 0; i < 4; ++i)
    version |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(bytes[i]))
               << (8 * i);
  bytes.remove_prefix(4);
  if (version != kRecordCodecVersion)
    throw std::runtime_error(
        "record_codec: stream version " + std::to_string(version) +
        " (this build reads version " +
        std::to_string(kRecordCodecVersion) +
        "); refusing to guess the field layout");
  std::string_view header_frame;
  if (!next_frame(bytes, header_frame))
    throw std::runtime_error("record_codec: truncated stream header");
  DecodedStream out;
  out.header = decode_header_body(header_frame);
  out.records = decode_records(bytes, &out.torn_tail);
  return out;
}

std::vector<TrialRecord> decode_records(std::string_view bytes,
                                        bool* torn_tail) {
  std::vector<TrialRecord> out;
  std::string_view frame;
  while (!bytes.empty()) {
    if (!next_frame(bytes, frame)) {
      if (torn_tail) *torn_tail = true;
      return out;
    }
    out.push_back(decode_record_body(frame));
  }
  if (torn_tail) *torn_tail = false;
  return out;
}

Checkpoint load_binary_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("checkpoint: cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  DecodedStream s = decode_stream(bytes);
  return Checkpoint{std::move(s.header), std::move(s.records)};
}

std::string to_jsonl(const CheckpointHeader& h,
                     const std::vector<TrialRecord>& records) {
  std::string out = checkpoint_header_line(h);
  for (const TrialRecord& r : records) out += trial_record_line(r);
  return out;
}

std::vector<TrialRecord> sort_unique_records(
    std::vector<TrialRecord> records) {
  std::sort(records.begin(), records.end(),
            [](const TrialRecord& a, const TrialRecord& b) {
              return a.trial < b.trial;
            });
  std::vector<TrialRecord> unique;
  unique.reserve(records.size());
  for (TrialRecord& r : records) {
    if (!unique.empty() && unique.back().trial == r.trial) {
      if (!(unique.back() == r))
        throw std::runtime_error(
            "sort_unique_records: conflicting records for trial " +
            std::to_string(r.trial) +
            " (streams disagree about a deterministic trial)");
      continue;
    }
    unique.push_back(std::move(r));
  }
  return unique;
}

}  // namespace rangerpp::fi

#include "fi/weight_fault.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <unordered_map>

#include "util/parse.hpp"

namespace rangerpp::fi {

std::string_view fault_class_token(FaultClass c) {
  switch (c) {
    case FaultClass::kActivation: return "activation";
    case FaultClass::kWeight: return "weight";
  }
  return "?";
}

std::optional<FaultClass> fault_class_from_token(std::string_view s) {
  if (s == "activation") return FaultClass::kActivation;
  if (s == "weight") return FaultClass::kWeight;
  return std::nullopt;
}

std::string_view weight_fault_kind_token(WeightFaultKind k) {
  switch (k) {
    case WeightFaultKind::kSingleBit: return "single";
    case WeightFaultKind::kMultiBit: return "multi";
    case WeightFaultKind::kConsecutiveBurst: return "burst";
    case WeightFaultKind::kStuckAt0: return "stuck0";
    case WeightFaultKind::kStuckAt1: return "stuck1";
    case WeightFaultKind::kRowBurst: return "row";
  }
  return "?";
}

std::optional<WeightFaultKind> weight_fault_kind_from_token(
    std::string_view s) {
  if (s == "single") return WeightFaultKind::kSingleBit;
  if (s == "multi") return WeightFaultKind::kMultiBit;
  if (s == "burst") return WeightFaultKind::kConsecutiveBurst;
  if (s == "stuck0") return WeightFaultKind::kStuckAt0;
  if (s == "stuck1") return WeightFaultKind::kStuckAt1;
  if (s == "row") return WeightFaultKind::kRowBurst;
  return std::nullopt;
}

std::string ecc_token(const EccModel& ecc) {
  switch (ecc.kind) {
    case EccKind::kNone: return "none";
    case EccKind::kSecDed: return "secded";
    case EccKind::kCoverage: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "cov%.9g", ecc.coverage);
      return buf;
    }
  }
  return "?";
}

std::optional<EccModel> ecc_from_token(std::string_view s) {
  if (s == "none") return EccModel{};
  if (s == "secded") return EccModel{EccKind::kSecDed, 0.0};
  if (s.starts_with("cov")) {
    double p = 0.0;
    if (!util::parse_f64(std::string(s.substr(3)).c_str(), p) || p < 0.0 ||
        p > 1.0)
      return std::nullopt;
    return EccModel{EccKind::kCoverage, p};
  }
  return std::nullopt;
}

FaultSet apply_ecc(const FaultSet& faults, const EccModel& ecc,
                   util::Rng& rng) {
  if (ecc.kind == EccKind::kNone) return faults;
  // Words in first-occurrence order, so the per-word coverage draws are a
  // deterministic function of the sampled set.
  struct Word {
    const FaultPoint* first;
    std::size_t count = 0;
    bool keep = true;
  };
  std::vector<Word> words;
  const auto word_of = [&words](const FaultPoint& f) -> Word& {
    for (Word& w : words)
      if (w.first->node_name == f.node_name && w.first->element == f.element)
        return w;
    words.push_back(Word{&f, 0, true});
    return words.back();
  };
  for (const FaultPoint& f : faults) ++word_of(f).count;
  for (Word& w : words) {
    const bool protected_word =
        ecc.kind == EccKind::kSecDed || rng.bernoulli(ecc.coverage);
    // SEC: a single faulty bit in a protected word is corrected.  DED:
    // two or more are detected but the corrupted word passes through.
    if (protected_word && w.count == 1) w.keep = false;
  }
  FaultSet out;
  out.reserve(faults.size());
  for (const FaultPoint& f : faults)
    if (word_of(f).keep) out.push_back(f);
  return out;
}

WeightSiteSpace::WeightSiteSpace(const graph::Graph& g, tensor::DType dtype)
    : dtype_bits_(tensor::dtype_bits(dtype)) {
  const std::vector<tensor::Shape> shapes = g.infer_shapes();
  for (const graph::Node& n : g.nodes()) {
    if (n.op->kind() != ops::OpKind::kConst) continue;
    bool consumer_injectable = false;
    for (const graph::NodeId c : g.consumers(n.id))
      if (g.node(c).injectable) {
        consumer_injectable = true;
        break;
      }
    if (!consumer_injectable) continue;  // §V-B exclusion, via the layer op
    const tensor::Shape& s = shapes[static_cast<std::size_t>(n.id)];
    const std::size_t elems = s.elements();
    if (elems == 0) continue;
    const std::size_t row =
        s.rank() > 0 ? static_cast<std::size_t>(s.dim(s.rank() - 1)) : elems;
    total_ += elems;
    nodes_.push_back(Entry{n.name, elems, total_, std::max<std::size_t>(
                                                      row, 1)});
  }
  if (total_ == 0)
    throw std::invalid_argument(
        "WeightSiteSpace: graph has no injectable Const sites");
}

std::pair<std::size_t, std::size_t> WeightSiteSpace::pick(
    util::Rng& rng) const {
  const std::size_t p = rng.uniform_index(total_);
  const auto it = std::lower_bound(
      nodes_.begin(), nodes_.end(), p,
      [](const Entry& e, std::size_t v) { return e.cumulative <= v; });
  const std::size_t site = static_cast<std::size_t>(it - nodes_.begin());
  return {site, p - (it->cumulative - it->elements)};
}

FaultSet WeightSiteSpace::sample(util::Rng& rng,
                                 const WeightFaultModel& model) const {
  if (model.n_bits < 1)
    throw std::invalid_argument("WeightSiteSpace::sample: n_bits < 1");
  const auto bit = [&] {
    return static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(dtype_bits_)));
  };
  FaultSet faults;
  switch (model.kind) {
    case WeightFaultKind::kSingleBit: {
      const auto [site, off] = pick(rng);
      faults.push_back(FaultPoint{nodes_[site].name, off, bit()});
      break;
    }
    case WeightFaultKind::kMultiBit: {
      faults.reserve(static_cast<std::size_t>(model.n_bits));
      for (int i = 0; i < model.n_bits; ++i) {
        const auto [site, off] = pick(rng);
        faults.push_back(FaultPoint{nodes_[site].name, off, bit()});
      }
      break;
    }
    case WeightFaultKind::kConsecutiveBurst: {
      if (model.n_bits > dtype_bits_)
        throw std::invalid_argument(
            "WeightSiteSpace::sample: burst wider than the datatype");
      const auto [site, off] = pick(rng);
      const int start = static_cast<int>(rng.uniform_index(
          static_cast<std::uint64_t>(dtype_bits_ - model.n_bits + 1)));
      faults.reserve(static_cast<std::size_t>(model.n_bits));
      for (int i = 0; i < model.n_bits; ++i)
        faults.push_back(FaultPoint{nodes_[site].name, off, start + i});
      break;
    }
    case WeightFaultKind::kStuckAt0:
    case WeightFaultKind::kStuckAt1: {
      const auto [site, off] = pick(rng);
      faults.push_back(
          FaultPoint{nodes_[site].name, off, bit(),
                     model.kind == WeightFaultKind::kStuckAt0
                         ? FaultAction::kStuck0
                         : FaultAction::kStuck1});
      break;
    }
    case WeightFaultKind::kRowBurst: {
      // Same bit in up to n_bits consecutive elements, clipped at the end
      // of the innermost-dimension row it starts in.
      const auto [site, off] = pick(rng);
      const Entry& e = nodes_[site];
      const std::size_t row_end = (off / e.row + 1) * e.row;
      const std::size_t burst = std::min<std::size_t>(
          static_cast<std::size_t>(model.n_bits),
          std::min(row_end, e.elements) - off);
      const int b = bit();
      faults.reserve(burst);
      for (std::size_t i = 0; i < burst; ++i)
        faults.push_back(FaultPoint{e.name, off + i, b});
      break;
    }
  }
  return faults;
}

std::size_t WeightSiteSpace::elements_of(const std::string& node_name) const {
  for (const Entry& e : nodes_)
    if (e.name == node_name) return e.elements;
  return 0;
}

std::size_t WeightSiteSpace::site_index(const std::string& node_name) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].name == node_name) return i;
  return SIZE_MAX;
}

std::vector<graph::ConstOverride> make_const_overrides(
    const graph::ExecutionPlan& plan, const FaultSet& faults) {
  const graph::Graph& g = plan.graph();
  std::unordered_map<graph::NodeId, std::vector<const FaultPoint*>> by_node;
  for (const FaultPoint& f : faults) {
    const graph::NodeId id = g.find(f.node_name);
    if (id == graph::kInvalidNode || !plan.is_const(id)) continue;
    by_node[id].push_back(&f);
  }
  std::vector<graph::ConstOverride> out;
  out.reserve(by_node.size());
  // lint:unordered-ok overrides are sorted by node id below
  for (const auto& [id, points] : by_node) {
    tensor::Tensor t = plan.const_output(id).clone();
    for (const FaultPoint* f : points) {
      if (f->element >= t.elements()) continue;  // cross-graph tolerance
      t.set(f->element, apply_fault_value(plan.qscheme(id), t.at(f->element),
                                          *f));
    }
    out.push_back(graph::ConstOverride{id, std::move(t)});
  }
  // by_node iteration order is unspecified; canonicalise so override
  // construction is deterministic across standard libraries.
  std::sort(out.begin(), out.end(),
            [](const graph::ConstOverride& a, const graph::ConstOverride& b) {
              return a.node < b.node;
            });
  return out;
}

std::vector<graph::NodeId> const_fault_roots(const graph::Graph& g,
                                             const FaultSet& faults) {
  std::vector<graph::NodeId> roots;
  roots.reserve(faults.size());
  for (const FaultPoint& f : faults) {
    const graph::NodeId id = g.find(f.node_name);
    if (id != graph::kInvalidNode) roots.push_back(id);
  }
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  return roots;
}

}  // namespace rangerpp::fi

#include "fi/campaign.hpp"

#include <atomic>
#include <stdexcept>

#include "graph/plan.hpp"
#include "util/threadpool.hpp"

namespace rangerpp::fi {

namespace {

// Golden state for one input: the fault-free output plus the full
// activation snapshot trials resume from.
struct GoldenInput {
  tensor::Tensor output;
  std::vector<tensor::Tensor> activations;  // shared-storage snapshot
};

std::vector<GoldenInput> compute_goldens(const graph::Executor& exec,
                                         const graph::ExecutionPlan& plan,
                                         const std::vector<Feeds>& inputs) {
  std::vector<GoldenInput> golden;
  golden.reserve(inputs.size());
  graph::Arena arena;
  for (const Feeds& f : inputs) {
    GoldenInput g;
    g.output = exec.run(plan, f, arena);
    g.activations = arena.outputs();  // cheap: tensors share storage
    golden.push_back(std::move(g));
  }
  return golden;
}

// Resolves a sampled fault set to injection-root node ids on `g`.  Names
// absent from the graph are skipped (mirrors make_injection_hook).
std::vector<graph::NodeId> fault_roots(const graph::Graph& g,
                                       const FaultSet& faults) {
  std::vector<graph::NodeId> roots;
  roots.reserve(faults.size());
  for (const FaultPoint& f : faults) {
    const graph::NodeId id = g.find(f.node_name);
    if (id != graph::kInvalidNode) roots.push_back(id);
  }
  return roots;
}

}  // namespace

std::vector<CampaignResult> Campaign::run_multi(
    const graph::Graph& g, const std::vector<Feeds>& inputs,
    const std::vector<JudgePtr>& judges) const {
  if (inputs.empty()) throw std::invalid_argument("Campaign: no inputs");
  if (judges.empty()) throw std::invalid_argument("Campaign: no judges");
  const graph::Executor exec({config_.dtype});
  const graph::ExecutionPlan plan(g, config_.dtype);
  const SiteSpace sites(g, config_.dtype);

  // Goldens per input, computed once under the campaign datatype.
  const std::vector<GoldenInput> golden = compute_goldens(exec, plan, inputs);

  const std::size_t total = inputs.size() * config_.trials_per_input;
  const unsigned workers = util::worker_count(total, config_.threads);
  std::vector<graph::Arena> arenas(workers);
  std::vector<std::atomic<std::size_t>> sdcs(judges.size());
  util::parallel_for_workers(
      total,
      [&](unsigned worker, std::size_t t) {
        const std::size_t input_idx = t / config_.trials_per_input;
        util::Rng rng(util::derive_seed(config_.seed, t));
        const FaultSet faults =
            config_.consecutive_bits
                ? sites.sample_consecutive(rng, config_.n_bits)
                : sites.sample(rng, config_.n_bits);
        const graph::PostOpHook hook =
            make_injection_hook(plan.graph(), config_.dtype, faults);
        graph::Arena& arena = arenas[worker];
        const tensor::Tensor out =
            config_.partial_reexecution
                ? exec.run_from(plan, golden[input_idx].activations,
                                fault_roots(plan.graph(), faults), arena,
                                hook)
                : exec.run(plan, inputs[input_idx], arena, hook);
        for (std::size_t j = 0; j < judges.size(); ++j)
          if (judges[j]->is_sdc(golden[input_idx].output, out))
            sdcs[j].fetch_add(1, std::memory_order_relaxed);
      },
      config_.threads);

  std::vector<CampaignResult> results;
  results.reserve(judges.size());
  for (auto& s : sdcs) results.push_back(CampaignResult{total, s.load()});
  return results;
}

CampaignResult Campaign::run(const graph::Graph& g,
                             const std::vector<Feeds>& inputs,
                             const SdcJudge& judge) const {
  // Non-owning adapter around `judge` for the multi-judge path.
  const JudgePtr alias(&judge, [](const SdcJudge*) {});
  return run_multi(g, inputs, {alias})[0];
}

std::vector<Campaign::PairedOutcome> Campaign::run_paired(
    const graph::Graph& unprotected, const graph::Graph& protected_g,
    const std::vector<Feeds>& inputs, const SdcJudge& judge,
    const std::function<bool(const graph::Graph&, const Feeds&,
                             const FaultSet&)>& detector) const {
  if (inputs.empty()) throw std::invalid_argument("Campaign: no inputs");
  const graph::Executor exec({config_.dtype});
  // Each graph gets its own plan; the Ranger transform preserves node
  // names, so fault sites planned on the unprotected graph resolve to
  // injection roots on the protected plan too, and its restriction
  // (`/ranger`) nodes are swept into the recompute set by the protected
  // plan's own reachability relation.
  const graph::ExecutionPlan plan_u(unprotected, config_.dtype);
  const graph::ExecutionPlan plan_p(protected_g, config_.dtype);
  // Fault sites are planned on the *unprotected* graph so both runs see the
  // identical fault (Ranger's clamp nodes are extra, never-faulted ops —
  // conservative for Ranger, as the paper also injects into them; the
  // single-graph `run` API does include clamp outputs).
  const SiteSpace sites(unprotected, config_.dtype);

  const std::vector<GoldenInput> golden_u =
      compute_goldens(exec, plan_u, inputs);
  const std::vector<GoldenInput> golden_p =
      compute_goldens(exec, plan_p, inputs);

  const std::size_t total = inputs.size() * config_.trials_per_input;
  const unsigned workers = util::worker_count(total, config_.threads);
  std::vector<graph::Arena> arenas_u(workers), arenas_p(workers);
  std::vector<PairedOutcome> outcomes(total);
  util::parallel_for_workers(
      total,
      [&](unsigned worker, std::size_t t) {
        const std::size_t input_idx = t / config_.trials_per_input;
        util::Rng rng(util::derive_seed(config_.seed, t));
        const FaultSet faults =
            config_.consecutive_bits
                ? sites.sample_consecutive(rng, config_.n_bits)
                : sites.sample(rng, config_.n_bits);

        const auto run_one = [&](const graph::ExecutionPlan& plan,
                                 const GoldenInput& golden,
                                 graph::Arena& arena) {
          const graph::PostOpHook hook =
              make_injection_hook(plan.graph(), config_.dtype, faults);
          return config_.partial_reexecution
                     ? exec.run_from(plan, golden.activations,
                                     fault_roots(plan.graph(), faults),
                                     arena, hook)
                     : exec.run(plan, inputs[input_idx], arena, hook);
        };
        const tensor::Tensor out_u =
            run_one(plan_u, golden_u[input_idx], arenas_u[worker]);
        const tensor::Tensor out_p =
            run_one(plan_p, golden_p[input_idx], arenas_p[worker]);

        PairedOutcome& o = outcomes[t];
        o.sdc_unprotected = judge.is_sdc(golden_u[input_idx].output, out_u);
        o.sdc_protected = judge.is_sdc(golden_p[input_idx].output, out_p);
        if (detector)
          o.detected = detector(protected_g, inputs[input_idx], faults);
      },
      config_.threads);
  return outcomes;
}

}  // namespace rangerpp::fi

#include "fi/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "graph/passes.hpp"
#include "util/threadpool.hpp"

namespace rangerpp::fi {

namespace {

// Resolves a sampled fault set to injection-root node ids on `g`.  Names
// absent from the graph are skipped (mirrors make_injection_hook).
std::vector<graph::NodeId> fault_roots(const graph::Graph& g,
                                       const FaultSet& faults) {
  std::vector<graph::NodeId> roots;
  roots.reserve(faults.size());
  for (const FaultPoint& f : faults) {
    const graph::NodeId id = g.find(f.node_name);
    if (id != graph::kInvalidNode) roots.push_back(id);
  }
  return roots;
}

// Compile options for a campaign plan under `batch` images per run.
// Observe::kInjectable: every injection site (and profiled ceiling) lives
// on an injectable node, so rewrites only ever touch the non-injectable
// output head — site replay and golden snapshots are unaffected, and the
// fused plan stays bit-identical to the legacy one (the
// campaign-throughput identity gate checks this).
graph::CompileOptions campaign_compile_options(const CampaignConfig& config,
                                               std::size_t batch) {
  graph::CompileOptions opts;
  opts.dtype = config.dtype;
  opts.backend = config.backend;
  opts.batch = batch;
  opts.int8_formats = config.int8_formats;
  opts.observe = graph::Observe::kInjectable;
  // Debug builds already verify; verify_plan forces it in release too.
  opts.verify = opts.verify || config.verify_plan;
  return opts;
}

}  // namespace

// ---- TrialPlanner -----------------------------------------------------------

TrialPlanner::TrialPlanner(const graph::Graph& g,
                           const CampaignConfig& config, std::size_t n_inputs,
                           StratifiedOptions stratified)
    : config_(config), n_inputs_(n_inputs), stratified_(stratified) {
  if (n_inputs_ == 0)
    throw std::invalid_argument("TrialPlanner: no inputs");
  // Validate here, on the caller's thread: plan() runs inside thread-pool
  // workers, where a throw would terminate the process.
  if (config_.n_bits < 1)
    throw std::invalid_argument("TrialPlanner: n_bits < 1");
  const bool weight = config_.fault_class == FaultClass::kWeight;
  if (weight && config_.weight_fault.n_bits < 1)
    throw std::invalid_argument("TrialPlanner: weight_fault.n_bits < 1");
  if (stratified_.enabled && weight)
    throw std::invalid_argument(
        "TrialPlanner: stratified sampling is not defined for weight-fault "
        "campaigns (records are still post-stratified per const tensor)");
  if (stratified_.enabled &&
      (config_.n_bits != 1 || config_.consecutive_bits))
    throw std::invalid_argument(
        "TrialPlanner: stratified sampling requires the single-bit fault "
        "model (n_bits == 1, consecutive_bits == false)");
  if (stratified_.bit_group_size < 1)
    throw std::invalid_argument("TrialPlanner: bit_group_size < 1");

  // Exactly one site population exists per campaign; both expose the same
  // (site × bit-group) strata shape, so the report layer is class-blind.
  if (weight)
    wsites_.emplace(g, config_.dtype);
  else
    sites_.emplace(g, config_.dtype);
  const int bits = weight ? wsites_->dtype_bits() : sites_->dtype_bits();
  const std::size_t n_sites =
      weight ? wsites_->injectable_tensors() : sites_->injectable_nodes();
  const auto site_name = [&](std::size_t i) -> const std::string& {
    return weight ? wsites_->site_name(i) : sites_->site_name(i);
  };
  const auto site_elements = [&](std::size_t i) {
    return weight ? wsites_->site_elements(i) : sites_->site_elements(i);
  };
  const double total = static_cast<double>(
      weight ? wsites_->total_elements() : sites_->total_elements());
  const int group = std::min(stratified_.bit_group_size, bits);
  bit_groups_ =
      static_cast<std::size_t>((bits + group - 1) / group);
  for (std::size_t i = 0; i < n_sites; ++i) {
    for (std::size_t b = 0; b < bit_groups_; ++b) {
      Stratum s;
      s.site = i;
      s.bit_lo = static_cast<int>(b) * group;
      s.bit_span = std::min(group, bits - s.bit_lo);
      s.key = site_name(i) + ":b" + std::to_string(s.bit_lo) + "-" +
              std::to_string(s.bit_lo + s.bit_span - 1);
      s.weight = (static_cast<double>(site_elements(i)) / total) *
                 (static_cast<double>(s.bit_span) / bits);
      strata_.push_back(std::move(s));
    }
  }
}

std::size_t TrialPlanner::stratum_of(const FaultSet& faults) const {
  // Classified by the first fault point (the only one under the default
  // single-bit model; a representative one under multi-bit).
  const FaultPoint& f = faults.front();
  const bool weight = config_.fault_class == FaultClass::kWeight;
  const std::size_t site = weight ? wsites_->site_index(f.node_name)
                                  : sites_->site_index(f.node_name);
  if (site == SIZE_MAX) return 0;
  const int bits = weight ? wsites_->dtype_bits() : sites_->dtype_bits();
  const int group = std::min(stratified_.bit_group_size, bits);
  return site * bit_groups_ + static_cast<std::size_t>(f.bit / group);
}

std::size_t TrialPlanner::stratum_for_index(std::size_t t) const {
  // Stratum assignment under stratified sampling.  Plain round-robin
  // (t % S) would alias with shard partitioning (t % N): a shard whose
  // count shares a factor with S would never sample entire strata.
  // Instead each block of S consecutive trials covers every stratum
  // exactly once through a per-block pseudorandom permutation — still a
  // pure, shard-agnostic function of t (so shards and the golden run
  // agree on every trial), still exactly equal allocation per full
  // block, but a shard's arithmetic progression of trial indices now
  // meets every stratum across blocks.
  const std::size_t S = strata_.size();
  const std::size_t block = t / S;
  const std::size_t offset = t % S;
  // plan() is called once per trial from thread-pool workers, and all S
  // trials of a block share one permutation — cache it per thread so the
  // shuffle is paid once per block, not once per trial.
  struct PermCache {
    std::uint64_t seed = 0;
    std::size_t block = SIZE_MAX;
    std::size_t size = 0;
    std::vector<std::uint32_t> perm;
  };
  static thread_local PermCache cache;
  if (cache.seed != config_.seed || cache.block != block ||
      cache.size != S) {
    cache.seed = config_.seed;
    cache.block = block;
    cache.size = S;
    cache.perm.resize(S);
    for (std::size_t i = 0; i < S; ++i)
      cache.perm[i] = static_cast<std::uint32_t>(i);
    util::Rng rng(
        util::derive_seed(config_.seed ^ 0x53545241544121ULL, block));
    for (std::size_t i = S - 1; i > 0; --i)
      std::swap(cache.perm[i], cache.perm[rng.uniform_index(i + 1)]);
  }
  return cache.perm[offset];
}

TrialSpec TrialPlanner::plan(std::size_t t) const {
  TrialSpec spec;
  spec.trial = t;
  if (config_.fault_class == FaultClass::kWeight) {
    // Input sweep: consecutive trials iterate every input under one
    // persistent fault.  The fault stream is keyed on the fault index
    // alone (not the trial index), so all n_inputs trials of fault f
    // corrupt memory identically and the executor patches the consts
    // once per fault.  The ECC coverage draws ride the same stream,
    // making the applied set a pure function of (seed, fault index).
    spec.input = t % n_inputs_;
    const std::size_t fault_idx = t / n_inputs_;
    util::Rng rng(util::derive_seed(
        config_.seed ^ 0x5745494748545321ULL, fault_idx));
    spec.faults = wsites_->sample(rng, config_.weight_fault);
    spec.applied = apply_ecc(spec.faults, config_.ecc, rng);
    spec.stratum = stratum_of(spec.faults);
    return spec;
  }
  spec.input = t / config_.trials_per_input;
  util::Rng rng(util::derive_seed(config_.seed, t));
  if (!stratified_.enabled) {
    spec.faults = config_.consecutive_bits
                      ? sites_->sample_consecutive(rng, config_.n_bits)
                      : sites_->sample(rng, config_.n_bits);
    spec.applied = spec.faults;
    spec.stratum = stratum_of(spec.faults);
    return spec;
  }
  // Stratified: the stratum is fixed by the trial index; the element and
  // bit are drawn uniformly *within* it from the trial's own stream.
  spec.stratum = stratum_for_index(t);
  const Stratum& s = strata_[spec.stratum];
  const std::size_t element =
      rng.uniform_index(sites_->site_elements(s.site));
  const int bit =
      s.bit_lo + static_cast<int>(rng.uniform_index(
                     static_cast<std::uint64_t>(s.bit_span)));
  spec.faults = {FaultPoint{sites_->site_name(s.site), element, bit}};
  spec.applied = spec.faults;
  return spec;
}

// ---- TrialExecutor ----------------------------------------------------------

TrialExecutor::TrialExecutor(const graph::Graph& g,
                             const CampaignConfig& config,
                             const std::vector<Feeds>& inputs,
                             unsigned workers)
    : config_(config),
      inputs_(&inputs),
      exec_({config.dtype}),
      plan_(graph::compile(g, campaign_compile_options(config, 1))),
      arenas_(workers == 0 ? 1 : workers) {
  if (inputs.empty())
    throw std::invalid_argument("TrialExecutor: no inputs");
  // Goldens per input, computed once under the campaign datatype.
  golden_.reserve(inputs.size());
  graph::Arena arena;
  for (const Feeds& f : inputs) {
    GoldenState gs;
    gs.output = exec_.run(plan_, f, arena);
    gs.activations = arena.outputs();  // cheap: tensors share storage
    golden_.push_back(std::move(gs));
  }

  // Weight campaigns never batch: batch rows share the const tensors, so
  // two different persistent faults cannot ride one plan run.
  if (config_.fault_class == FaultClass::kActivation && config_.batch > 1 &&
      graph::plan_supports_batch(g)) {
    // Compiled with the same options (plus batch) as plan_: the rewrite
    // passes are deterministic and batch-independent, so node ids line up
    // between the two plans — which the tiled goldens below rely on.
    batch_plan_ = std::make_unique<graph::ExecutionPlan>(
        graph::compile(g, campaign_compile_options(config, config.batch)));
    // Only the state the configured mode will read is materialised:
    // partial re-execution resumes from tiled goldens, full re-execution
    // re-runs from tiled feeds.
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      if (config_.partial_reexecution) {
        // Batched goldens are the single-image goldens tiled across rows
        // (consts are shared, not per-row), so a batched partial run
        // resumes from exactly the state trial-per-trial execution would.
        std::vector<tensor::Tensor> tiled(plan_.size());
        for (const graph::Node& n : plan_.graph().nodes()) {
          const auto id = static_cast<std::size_t>(n.id);
          tiled[id] =
              batch_plan_->is_const(n.id)
                  ? batch_plan_->const_output(n.id)
                  : graph::tile_batch(golden_[i].activations[id],
                                      config_.batch,
                                      batch_plan_->shapes()[id]);
        }
        batch_golden_.push_back(std::move(tiled));
      } else {
        Feeds packed;
        for (const graph::Node& n : plan_.graph().nodes()) {
          if (!plan_.is_input(n.id)) continue;
          const auto it = inputs[i].find(n.name);
          if (it == inputs[i].end())
            throw std::invalid_argument(
                "TrialExecutor: missing feed for input '" + n.name + "'");
          packed.emplace(
              n.name,
              graph::tile_batch(
                  it->second, config_.batch,
                  batch_plan_->shapes()[static_cast<std::size_t>(n.id)]));
        }
        batch_feeds_.push_back(std::move(packed));
      }
    }
    batch_arenas_.resize(arenas_.size());
  }
}

tensor::Tensor TrialExecutor::run_trial(unsigned worker,
                                        std::size_t input_idx,
                                        const FaultSet& faults) const {
  const graph::PostOpHook hook = make_injection_hook(plan_, faults);
  graph::Arena& arena = arenas_[worker];
  return config_.partial_reexecution
             ? exec_.run_from(plan_, golden_[input_idx].activations,
                              fault_roots(plan_.graph(), faults), arena,
                              hook)
             : exec_.run(plan_, (*inputs_)[input_idx], arena, hook);
}

std::vector<tensor::Tensor> TrialExecutor::run_trial_batch(
    unsigned worker, std::size_t input_idx,
    std::span<const FaultSet> row_faults) const {
  if (!batch_plan_)
    throw std::logic_error("TrialExecutor: batching unavailable");
  if (row_faults.empty() || row_faults.size() > config_.batch)
    throw std::invalid_argument("TrialExecutor: bad batch size");
  const graph::PostOpHook hook =
      make_batched_injection_hook(*batch_plan_, row_faults);
  graph::Arena& arena = batch_arenas_[worker];
  tensor::Tensor out;
  if (config_.partial_reexecution) {
    // Injection roots are the union over the rows' fault sets; the hook
    // only perturbs each trial's own row, so rows without a fault at a
    // union root diff clean and collapse back to golden.
    std::vector<graph::NodeId> roots;
    for (const FaultSet& fs : row_faults)
      for (const graph::NodeId id : fault_roots(batch_plan_->graph(), fs))
        roots.push_back(id);
    std::sort(roots.begin(), roots.end());
    roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
    out = exec_.run_from(*batch_plan_, batch_golden_[input_idx], roots,
                         arena, hook);
  } else {
    out = exec_.run(*batch_plan_, batch_feeds_[input_idx], arena, hook);
  }
  std::vector<tensor::Tensor> rows;
  rows.reserve(row_faults.size());
  const tensor::Shape& single = golden_[input_idx].output.shape();
  for (std::size_t b = 0; b < row_faults.size(); ++b)
    rows.push_back(graph::slice_batch(out, b, config_.batch, single));
  return rows;
}

TrialExecutor::PatchedConsts TrialExecutor::patch_consts(
    const FaultSet& applied) const {
  PatchedConsts patch;
  patch.overrides = make_const_overrides(plan_, applied);
  patch.roots.reserve(patch.overrides.size());
  for (const graph::ConstOverride& ov : patch.overrides)
    patch.roots.push_back(ov.node);
  return patch;
}

tensor::Tensor TrialExecutor::run_weight_trial(
    unsigned worker, std::size_t input_idx,
    const PatchedConsts& patch) const {
  if (patch.overrides.empty())
    return golden_[input_idx].output;  // ECC corrected the sample
  graph::Arena& arena = arenas_[worker];
  return config_.partial_reexecution
             ? exec_.run_from(plan_, golden_[input_idx].activations,
                              patch.roots, arena, patch.overrides)
             : exec_.run(plan_, (*inputs_)[input_idx], arena,
                         patch.overrides);
}

// ---- Campaign ---------------------------------------------------------------

std::vector<CampaignResult> Campaign::run_multi(
    const graph::Graph& g, const std::vector<Feeds>& inputs,
    const std::vector<JudgePtr>& judges) const {
  if (inputs.empty()) throw std::invalid_argument("Campaign: no inputs");
  if (judges.empty()) throw std::invalid_argument("Campaign: no judges");
  const TrialPlanner planner(g, config_, inputs.size());
  const std::size_t total = planner.total_trials();
  const unsigned workers = util::worker_count(total, config_.threads);
  const TrialExecutor executor(g, config_, inputs, workers);

  if (config_.fault_class == FaultClass::kWeight) {
    // Input-sweep execution: one parallel task per fault — the patched
    // const tensors are built once and swept across every input.
    std::vector<std::atomic<std::size_t>> wsdcs(judges.size());
    const std::size_t n_faults = config_.trials_per_input;
    util::parallel_for_workers(
        n_faults,
        [&](unsigned worker, std::size_t f) {
          const TrialSpec first = planner.plan(f * inputs.size());
          const TrialExecutor::PatchedConsts patch =
              executor.patch_consts(first.applied);
          for (std::size_t i = 0; i < inputs.size(); ++i) {
            const tensor::Tensor out =
                executor.run_weight_trial(worker, i, patch);
            for (std::size_t j = 0; j < judges.size(); ++j)
              if (judges[j]->is_sdc(executor.golden_output(i), out))
                wsdcs[j].fetch_add(1, std::memory_order_relaxed);
          }
        },
        config_.threads);
    std::vector<CampaignResult> results;
    results.reserve(judges.size());
    for (auto& s : wsdcs) results.push_back(CampaignResult{total, s.load()});
    return results;
  }

  // Trials are grouped into same-input chunks of up to executor.batch()
  // so each chunk rides one batched plan run; chunking never changes
  // results (batched rows are bit-identical to per-trial runs), only how
  // many trials share one dispatch.
  const std::size_t bsz = std::max<std::size_t>(1, executor.batch());
  struct Chunk {
    std::size_t begin, count;
  };
  std::vector<Chunk> chunks;
  chunks.reserve(total / bsz + inputs.size());
  for (std::size_t t = 0; t < total;) {
    const std::size_t input_end =
        (t / config_.trials_per_input + 1) * config_.trials_per_input;
    const std::size_t count =
        std::min({bsz, total - t, input_end - t});
    chunks.push_back({t, count});
    t += count;
  }

  std::vector<std::atomic<std::size_t>> sdcs(judges.size());
  const auto judge_output = [&](std::size_t input,
                                const tensor::Tensor& out) {
    for (std::size_t j = 0; j < judges.size(); ++j)
      if (judges[j]->is_sdc(executor.golden_output(input), out))
        sdcs[j].fetch_add(1, std::memory_order_relaxed);
  };
  util::parallel_for_workers(
      chunks.size(),
      [&](unsigned worker, std::size_t c) {
        const Chunk chunk = chunks[c];
        if (chunk.count == 1 || executor.batch() == 1) {
          for (std::size_t i = 0; i < chunk.count; ++i) {
            const TrialSpec spec = planner.plan(chunk.begin + i);
            judge_output(spec.input,
                         executor.run_trial(worker, spec.input, spec.faults));
          }
          return;
        }
        std::vector<FaultSet> faults;
        faults.reserve(chunk.count);
        std::size_t input = 0;
        for (std::size_t i = 0; i < chunk.count; ++i) {
          TrialSpec spec = planner.plan(chunk.begin + i);
          // Chunks were cut at trials_per_input boundaries; if the
          // planner's input assignment ever stops matching that, fail
          // loudly rather than judge trials against the wrong golden.
          if (i > 0 && spec.input != input)
            throw std::logic_error(
                "Campaign: trial chunk spans inputs — planner/chunking "
                "mismatch");
          input = spec.input;
          faults.push_back(std::move(spec.faults));
        }
        const std::vector<tensor::Tensor> outs =
            executor.run_trial_batch(worker, input, faults);
        for (const tensor::Tensor& out : outs) judge_output(input, out);
      },
      config_.threads);

  std::vector<CampaignResult> results;
  results.reserve(judges.size());
  for (auto& s : sdcs) results.push_back(CampaignResult{total, s.load()});
  return results;
}

CampaignResult Campaign::run(const graph::Graph& g,
                             const std::vector<Feeds>& inputs,
                             const SdcJudge& judge) const {
  // Non-owning adapter around `judge` for the multi-judge path.
  const JudgePtr alias(&judge, [](const SdcJudge*) {});
  return run_multi(g, inputs, {alias})[0];
}

std::vector<Campaign::PairedOutcome> Campaign::run_paired(
    const graph::Graph& unprotected, const graph::Graph& protected_g,
    const std::vector<Feeds>& inputs, const SdcJudge& judge,
    const std::function<bool(const graph::Graph&, const Feeds&,
                             const FaultSet&)>& detector) const {
  if (inputs.empty()) throw std::invalid_argument("Campaign: no inputs");
  // Fault sites are planned on the *unprotected* graph so both runs see the
  // identical fault (Ranger's clamp nodes are extra, never-faulted ops —
  // conservative for Ranger, as the paper also injects into them; the
  // single-graph `run` API does include clamp outputs).  The Ranger
  // transform preserves node names, so those sites resolve to injection
  // roots on the protected plan too, and its restriction (`/ranger`) nodes
  // are swept into the recompute set by the protected plan's own
  // reachability relation.
  const TrialPlanner planner(unprotected, config_, inputs.size());
  const std::size_t total = planner.total_trials();
  const unsigned workers = util::worker_count(total, config_.threads);
  // The paired loop runs trial-by-trial (two graphs per trial), so the
  // executors skip the batched-plan setup entirely.
  CampaignConfig paired_config = config_;
  paired_config.batch = 1;
  const TrialExecutor exec_u(unprotected, paired_config, inputs, workers);
  const TrialExecutor exec_p(protected_g, paired_config, inputs, workers);

  std::vector<PairedOutcome> outcomes(total);
  const auto judge_pair = [&](std::size_t t, const TrialSpec& spec,
                              const tensor::Tensor& out_u,
                              const tensor::Tensor& out_p) {
    PairedOutcome& o = outcomes[t];
    o.sdc_unprotected =
        judge.is_sdc(exec_u.golden_output(spec.input), out_u);
    o.sdc_protected =
        judge.is_sdc(exec_p.golden_output(spec.input), out_p);
    if (detector)
      o.detected = detector(protected_g, inputs[spec.input], spec.faults);
  };
  if (config_.fault_class == FaultClass::kWeight) {
    // One parallel task per fault: persistent faults replay on each twin
    // through its own const patch (resolved by name — the transform
    // preserves them), built once per fault and swept over every input.
    util::parallel_for_workers(
        config_.trials_per_input,
        [&](unsigned worker, std::size_t f) {
          const std::size_t base = f * inputs.size();
          const TrialSpec first = planner.plan(base);
          const TrialExecutor::PatchedConsts patch_u =
              exec_u.patch_consts(first.applied);
          const TrialExecutor::PatchedConsts patch_p =
              exec_p.patch_consts(first.applied);
          for (std::size_t i = 0; i < inputs.size(); ++i) {
            const TrialSpec spec = planner.plan(base + i);
            judge_pair(base + i, spec,
                       exec_u.run_weight_trial(worker, spec.input, patch_u),
                       exec_p.run_weight_trial(worker, spec.input, patch_p));
          }
        },
        config_.threads);
    return outcomes;
  }
  util::parallel_for_workers(
      total,
      [&](unsigned worker, std::size_t t) {
        const TrialSpec spec = planner.plan(t);
        judge_pair(t, spec, exec_u.run_trial(worker, spec.input, spec.faults),
                   exec_p.run_trial(worker, spec.input, spec.faults));
      },
      config_.threads);
  return outcomes;
}

}  // namespace rangerpp::fi

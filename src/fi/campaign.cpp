#include "fi/campaign.hpp"

#include <atomic>
#include <stdexcept>

#include "util/threadpool.hpp"

namespace rangerpp::fi {

std::vector<CampaignResult> Campaign::run_multi(
    const graph::Graph& g, const std::vector<Feeds>& inputs,
    const std::vector<JudgePtr>& judges) const {
  if (inputs.empty()) throw std::invalid_argument("Campaign: no inputs");
  if (judges.empty()) throw std::invalid_argument("Campaign: no judges");
  const graph::Executor exec({config_.dtype});
  const SiteSpace sites(g, config_.dtype);

  // Golden outputs per input, computed once under the campaign datatype.
  std::vector<tensor::Tensor> golden;
  golden.reserve(inputs.size());
  for (const Feeds& f : inputs) golden.push_back(exec.run(g, f));

  const std::size_t total = inputs.size() * config_.trials_per_input;
  std::vector<std::atomic<std::size_t>> sdcs(judges.size());
  util::parallel_for(
      total,
      [&](std::size_t t) {
        const std::size_t input_idx = t / config_.trials_per_input;
        util::Rng rng(util::derive_seed(config_.seed, t));
        const FaultSet faults =
            config_.consecutive_bits
                ? sites.sample_consecutive(rng, config_.n_bits)
                : sites.sample(rng, config_.n_bits);
        const tensor::Tensor out = exec.run(
            g, inputs[input_idx],
            make_injection_hook(g, config_.dtype, faults));
        for (std::size_t j = 0; j < judges.size(); ++j)
          if (judges[j]->is_sdc(golden[input_idx], out))
            sdcs[j].fetch_add(1, std::memory_order_relaxed);
      },
      config_.threads);

  std::vector<CampaignResult> results;
  results.reserve(judges.size());
  for (auto& s : sdcs) results.push_back(CampaignResult{total, s.load()});
  return results;
}

CampaignResult Campaign::run(const graph::Graph& g,
                             const std::vector<Feeds>& inputs,
                             const SdcJudge& judge) const {
  // Non-owning adapter around `judge` for the multi-judge path.
  const JudgePtr alias(&judge, [](const SdcJudge*) {});
  return run_multi(g, inputs, {alias})[0];
}

std::vector<Campaign::PairedOutcome> Campaign::run_paired(
    const graph::Graph& unprotected, const graph::Graph& protected_g,
    const std::vector<Feeds>& inputs, const SdcJudge& judge,
    const std::function<bool(const graph::Graph&, const Feeds&,
                             const FaultSet&)>& detector) const {
  if (inputs.empty()) throw std::invalid_argument("Campaign: no inputs");
  const graph::Executor exec({config_.dtype});
  // Fault sites are planned on the *unprotected* graph so both runs see the
  // identical fault (Ranger's clamp nodes are extra, never-faulted ops —
  // conservative for Ranger, as the paper also injects into them; the
  // single-graph `run` API does include clamp outputs).
  const SiteSpace sites(unprotected, config_.dtype);

  std::vector<tensor::Tensor> golden_unprot, golden_prot;
  for (const Feeds& f : inputs) {
    golden_unprot.push_back(exec.run(unprotected, f));
    golden_prot.push_back(exec.run(protected_g, f));
  }

  const std::size_t total = inputs.size() * config_.trials_per_input;
  std::vector<PairedOutcome> outcomes(total);
  util::parallel_for(
      total,
      [&](std::size_t t) {
        const std::size_t input_idx = t / config_.trials_per_input;
        util::Rng rng(util::derive_seed(config_.seed, t));
        const FaultSet faults =
            config_.consecutive_bits
                ? sites.sample_consecutive(rng, config_.n_bits)
                : sites.sample(rng, config_.n_bits);

        const tensor::Tensor out_u = exec.run(
            unprotected, inputs[input_idx],
            make_injection_hook(unprotected, config_.dtype, faults));
        const tensor::Tensor out_p = exec.run(
            protected_g, inputs[input_idx],
            make_injection_hook(protected_g, config_.dtype, faults));

        PairedOutcome& o = outcomes[t];
        o.sdc_unprotected = judge.is_sdc(golden_unprot[input_idx], out_u);
        o.sdc_protected = judge.is_sdc(golden_prot[input_idx], out_p);
        if (detector)
          o.detected = detector(protected_g, inputs[input_idx], faults);
      },
      config_.threads);
  return outcomes;
}

}  // namespace rangerpp::fi

// CampaignRunner: the orchestration layer that turns the in-process
// Campaign engine into a resumable, shardable campaign service.
//
//  * Deterministic sharding — shard i of N executes exactly the trials
//    with index ≡ i (mod N).  Because TrialPlanner::plan(t) and the
//    per-trial seed util::derive_seed(seed, t) depend only on the global
//    trial index, any shard subset reproduces bit-identically on any
//    machine, and the union of shards equals the single-process run
//    trial for trial.
//  * JSONL checkpointing — every executed trial is streamed to the
//    checkpoint file as a self-contained record; a killed campaign
//    resumes by re-reading the file and executing only the missing
//    trials (the resumed run's records are bit-identical to an
//    uninterrupted one).
//  * Stratified sampling — optional (layer, bit-group) strata with
//    per-stratum Wilson intervals and a weighted unbiased aggregate
//    (report.hpp).
//  * Early stopping — optionally stop once the aggregate Wilson-95
//    half-width of the first judge drops below a target, checked at
//    deterministic batch boundaries.
//
// Determinism contract: the records a run produces depend only on
// (campaign fingerprint, shard spec, executed trial set).  Worker thread
// count, kernel backend and trial batch size (CampaignConfig::threads /
// backend / batch) are pure performance knobs — trials are planned from
// the global index and executed bit-identically under every combination —
// so none of them enter the checkpoint fingerprint, and a checkpoint
// written under one combination resumes cleanly under another.
//
// Thread-safety: CampaignRunner is stateless after construction; run()
// may be called concurrently on the same runner only with distinct
// checkpoint paths (the checkpoint file has a single writer).  Internally
// run() parallelises trial groups over util::parallel_for workers, each
// owning a private Arena (see graph/plan.hpp for the arena contract).
#pragma once

#include <string>

#include "fi/campaign.hpp"
#include "fi/report.hpp"

namespace rangerpp::fi {

struct RunnerConfig {
  CampaignConfig campaign;
  StratifiedOptions stratified;

  // This process executes trials t with t % shard_count == shard_index.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;

  // Checkpoint path; empty = in-memory only.  An existing file is
  // resumed (its header must match this config, else the run throws).
  // A ".rcp" suffix selects the compact binary checkpoint-v2 format
  // (record_codec.hpp); anything else writes JSONL.  Resume reads
  // either format regardless of suffix and rewrites in the configured
  // one.
  std::string checkpoint_path;

  // Early stop: finish once the aggregate Wilson-95 half-width of judge 0
  // falls below this many percent.  0 = run every planned trial.
  double target_half_width_pct = 0.0;
  // Trials per batch between checkpoint flushes / early-stop checks.
  std::size_t check_every = 256;

  // Cap on trials newly executed by this invocation (0 = unlimited) —
  // lets a scheduler run a campaign in bounded slices, and lets tests
  // simulate a killed job at an exact point.
  std::size_t max_new_trials = 0;

  // Recorded in the checkpoint header (model name etc.); informational.
  std::string label;
};

// Everything one run() invocation needs beyond the runner config.  The
// default (only plan_graph set) is the classic single-graph campaign;
// the optional fields exist for the suite orchestrator, which shares
// compiled state across many cells:
//
//  * exec_graph — trials execute here while fault sites are planned on
//    plan_graph.  Node names shared by both graphs resolve the planned
//    faults onto the executed graph (the Ranger transform preserves
//    names), which is how Table-VI-style paired coverage replays the
//    unprotected fault stream on the protected twin.  Note the
//    checkpoint fingerprint derives from the *planning* graph, so a
//    paired cell and its unprotected sibling share a fingerprint — keep
//    their checkpoint paths distinct.
//  * executor — a pre-built TrialExecutor for exec_graph, reused across
//    campaigns (plans + goldens compiled once per (graph, dtype)).  Its
//    dtype must match the campaign's; its worker capacity caps the
//    runner's parallelism.
//  * judge_golden — per-input outputs to judge trials against instead of
//    the executed graph's own goldens (paired coverage judges the
//    protected output against the unprotected golden).
struct RunContext {
  const graph::Graph* plan_graph = nullptr;
  const graph::Graph* exec_graph = nullptr;    // null = plan_graph
  const TrialExecutor* executor = nullptr;     // null = build internally
  const std::vector<tensor::Tensor>* judge_golden = nullptr;
  // First arena slot of the shared executor this run may use: local
  // worker w executes as executor worker (worker_base + w).  The
  // scheduler runs many single-threaded runner invocations concurrently
  // against one shared executor, each pinned to a private arena by its
  // base; requires `executor` (a locally built one is already private)
  // and caps this run's parallelism to the slots above the base.
  unsigned worker_base = 0;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(RunnerConfig config);

  // Runs (or resumes) this shard of the campaign and returns the report
  // over every record available — loaded plus newly executed.  The
  // report's `planned` counts this shard's trials only; use
  // merge_checkpoints to combine shards into the full-campaign report.
  CampaignReport run(const graph::Graph& g, const std::vector<Feeds>& inputs,
                     const std::vector<JudgePtr>& judges) const;

  // As above, with the planning/execution split and shared compiled
  // state of `ctx` (see RunContext).  ctx.plan_graph is required.
  CampaignReport run(const RunContext& ctx, const std::vector<Feeds>& inputs,
                     const std::vector<JudgePtr>& judges) const;

  // The header `run` writes for this configuration (exposed for tests
  // and for tools that pre-validate checkpoints).
  CheckpointHeader make_header(std::size_t n_inputs,
                               std::size_t judge_count) const;

  const RunnerConfig& config() const { return config_; }

 private:
  RunnerConfig config_;
};

}  // namespace rangerpp::fi

#include "fi/suite.hpp"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include "core/calibration.hpp"
#include "core/flops_profiler.hpp"
#include "core/range_profiler.hpp"
#include "core/ranger_transform.hpp"
#include "ops/backend.hpp"
#include "util/metrics.hpp"
#include "util/parse.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"
#include "util/trace.hpp"

namespace rangerpp::fi {

namespace {

std::string_view act_token_impl(ops::OpKind act) {
  switch (act) {
    case ops::OpKind::kInput: return "default";
    case ops::OpKind::kRelu: return "relu";
    case ops::OpKind::kTanh: return "tanh";
    case ops::OpKind::kSigmoid: return "sigmoid";
    case ops::OpKind::kElu: return "elu";
    default: return "act";
  }
}

// Whether a weight-fault kind consumes the n_bits count parameter.
// fault_token and same_fault must agree on this: a kind that ignores
// n_bits must neither encode it in the cell id nor let it distinguish
// two otherwise-identical cells (which would compile two cells sharing
// one checkpoint filename and abort the suite mid-run).
bool weight_kind_uses_count(WeightFaultKind k) {
  return k == WeightFaultKind::kMultiBit ||
         k == WeightFaultKind::kConsecutiveBurst ||
         k == WeightFaultKind::kRowBurst;
}

// Appends are piecewise (no "lit" + std::string temporaries): gcc 12's
// -Wrestrict misfires on the inlined operator+ chains under -O2, and the
// CI legs build with -Werror.
std::string fault_token(const FaultModelSpec& f) {
  if (f.cls == FaultClass::kWeight) {
    std::string t = "w";
    t += weight_fault_kind_token(f.wkind);
    if (weight_kind_uses_count(f.wkind)) t += std::to_string(f.n_bits);
    if (f.ecc.kind != EccKind::kNone) {
      t += '-';
      t += ecc_token(f.ecc);
    }
    return t;
  }
  std::string t = "b";
  t += std::to_string(f.n_bits);
  if (f.consecutive) t += 'c';
  return t;
}


// Appends are piecewise (no "lit" + std::string temporaries): gcc 12's
// -Wrestrict misfires on the inlined operator+ chains under -O2, and the
// CI legs build with -Werror.
std::string cell_id_of(const SuiteCell& c) {
  std::string id = models::model_token(c.model);
  if (c.act != ops::OpKind::kInput) {
    id += '+';
    id += act_token_impl(c.act);
  }
  id += '.';
  id += dtype_token(c.dtype);
  id += '.';
  id += fault_token(c.fault);
  id += '.';
  id += technique_token(c.technique);
  return id;
}

std::string cell_label_of(const SuiteCell& c) {
  std::string label = models::model_name(c.model);
  if (c.act != ops::OpKind::kInput) {
    label += '+';
    label += act_token_impl(c.act);
  }
  if (c.technique == Technique::kRanger) label += "+ranger";
  else if (c.technique == Technique::kRangerPaired) label += "+ranger-paired";
  return label;
}

std::string checkpoint_filename(const SuiteSpec& spec, const SuiteCell& c) {
  return spec.name + "." + c.id + ".s" +
         std::to_string(spec.shard_index) + "of" +
         std::to_string(spec.shard_count) + ".jsonl";
}

bool same_fault(const FaultModelSpec& a, const FaultModelSpec& b) {
  if (a.cls != b.cls) return false;
  if (a.cls == FaultClass::kWeight)
    return a.wkind == b.wkind &&
           (!weight_kind_uses_count(a.wkind) || a.n_bits == b.n_bits) &&
           a.ecc.kind == b.ecc.kind && a.ecc.coverage == b.ecc.coverage;
  return a.n_bits == b.n_bits && a.consecutive == b.consecutive;
}

bool same_dims(const SuiteCell& a, const SuiteCell& b) {
  return a.model == b.model && a.act == b.act && a.dtype == b.dtype &&
         same_fault(a.fault, b.fault);
}

const SuiteCellResult* find_cell(const SuiteResult& r, models::ModelId id,
                                 ops::OpKind act, tensor::DType dtype,
                                 const FaultModelSpec& fault, Technique t) {
  for (const SuiteCellResult& c : r.cells)
    if (c.cell.model == id && c.cell.act == act && c.cell.dtype == dtype &&
        same_fault(c.cell.fault, fault) && c.cell.technique == t)
      return &c;
  return nullptr;
}

std::string reduction_str(double orig, double prot) {
  return prot > 0.0 ? util::Table::fmt(orig / prot, 1) + "x" : "inf";
}

// The report printers' fault selectors, spelled as functions instead of
// partial aggregate initialisers ({n, false} leaves cls/wkind/ecc to
// their defaults, which -Wextra flags under the CI -Werror legs).
FaultModelSpec activation_fault(int n_bits) {
  FaultModelSpec f;
  f.n_bits = n_bits;
  return f;
}

FaultModelSpec single_bit_fault() { return activation_fault(1); }

}  // namespace

std::string fault_spec_token(const FaultModelSpec& f) {
  return fault_token(f);
}

std::optional<FaultModelSpec> fault_spec_from_token(std::string_view s) {
  FaultModelSpec f;
  if (s.starts_with("b")) {
    // "b<N>[c]" — activation flips, optional consecutive-burst suffix.
    s.remove_prefix(1);
    if (s.ends_with("c")) {
      f.consecutive = true;
      s.remove_suffix(1);
    }
    std::uint64_t n = 0;
    if (!util::parse_u64(std::string(s).c_str(), n) || n < 1 || n > 64)
      return std::nullopt;
    f.n_bits = static_cast<int>(n);
    return f;
  }
  if (!s.starts_with("w")) return std::nullopt;
  s.remove_prefix(1);
  f.cls = FaultClass::kWeight;
  // "<kind>[<n>][-<ecc>]".  Kind tokens never contain '-', ecc tokens
  // never introduce one, so the first '-' splits the two parts.  The
  // count digits abut the kind token ("multi3"), and two kinds end in a
  // digit themselves ("stuck0"/"stuck1") — match known kind tokens as
  // prefixes, longest first, and require the remainder to be a count
  // exactly when the kind takes one.
  std::string_view ecc_part;
  if (const std::size_t dash = s.find('-'); dash != std::string_view::npos) {
    ecc_part = s.substr(dash + 1);
    s = s.substr(0, dash);
  }
  static constexpr WeightFaultKind kKinds[] = {
      WeightFaultKind::kStuckAt0,         WeightFaultKind::kStuckAt1,
      WeightFaultKind::kConsecutiveBurst, WeightFaultKind::kSingleBit,
      WeightFaultKind::kMultiBit,         WeightFaultKind::kRowBurst,
  };
  bool matched = false;
  for (const WeightFaultKind kind : kKinds) {
    const std::string_view token = weight_fault_kind_token(kind);
    if (!s.starts_with(token)) continue;
    const std::string_view rest = s.substr(token.size());
    if (weight_kind_uses_count(kind)) {
      std::uint64_t n = 0;
      if (!util::parse_u64(std::string(rest).c_str(), n) || n < 1 ||
          n > 4096)
        continue;
      f.n_bits = static_cast<int>(n);
    } else if (!rest.empty()) {
      continue;
    } else {
      f.n_bits = 1;
    }
    f.wkind = kind;
    matched = true;
    break;
  }
  if (!matched) return std::nullopt;
  if (!ecc_part.empty()) {
    const auto ecc = ecc_from_token(ecc_part);
    // A bare "none" never appears in printed tokens; reject it so the
    // grammar stays one-to-one with fault_spec_token's output.
    if (!ecc || ecc->kind == EccKind::kNone) return std::nullopt;
    f.ecc = *ecc;
  }
  return f;
}

std::string_view technique_token(Technique t) {
  switch (t) {
    case Technique::kUnprotected: return "unprotected";
    case Technique::kRanger: return "ranger";
    case Technique::kRangerPaired: return "ranger-paired";
  }
  return "?";
}

std::optional<Technique> technique_from_token(std::string_view s) {
  if (s == "unprotected") return Technique::kUnprotected;
  if (s == "ranger") return Technique::kRanger;
  if (s == "ranger-paired") return Technique::kRangerPaired;
  return std::nullopt;
}

std::string_view act_token(ops::OpKind act) { return act_token_impl(act); }

std::string_view dtype_token(tensor::DType d) {
  switch (d) {
    case tensor::DType::kFixed32: return "fixed32";
    case tensor::DType::kFixed16: return "fixed16";
    case tensor::DType::kInt8: return "int8";
    case tensor::DType::kFloat32: return "float32";
  }
  return "?";
}

std::optional<tensor::DType> dtype_from_token(std::string_view s) {
  if (s == "fixed32") return tensor::DType::kFixed32;
  if (s == "fixed16") return tensor::DType::kFixed16;
  if (s == "int8") return tensor::DType::kInt8;
  if (s == "float32") return tensor::DType::kFloat32;
  return std::nullopt;
}

std::optional<ops::OpKind> act_from_token(std::string_view s) {
  if (s == "default") return ops::OpKind::kInput;
  if (s == "relu") return ops::OpKind::kRelu;
  if (s == "tanh") return ops::OpKind::kTanh;
  if (s == "sigmoid") return ops::OpKind::kSigmoid;
  if (s == "elu") return ops::OpKind::kElu;
  return std::nullopt;
}

std::size_t cell_shard_index(std::size_t suite_shard_index,
                             std::size_t shard_count,
                             std::size_t global_offset) {
  // Suite trial g = offset + t runs when g % N == i, i.e. the cell-local
  // stream is sharded at index (i - offset) mod N.
  return (suite_shard_index + shard_count - global_offset % shard_count) %
         shard_count;
}

RunnerConfig cell_runner_config(const SuiteSpec& spec,
                                const SuiteCell& cell) {
  RunnerConfig rc;
  rc.campaign.dtype = cell.dtype;
  rc.campaign.n_bits = cell.fault.n_bits;
  rc.campaign.consecutive_bits = cell.fault.consecutive;
  rc.campaign.fault_class = cell.fault.cls;
  rc.campaign.weight_fault =
      WeightFaultModel{cell.fault.wkind, cell.fault.n_bits};
  rc.campaign.ecc = cell.fault.ecc;
  rc.campaign.trials_per_input = cell.trials_per_input;
  rc.campaign.seed = spec.seed;
  rc.campaign.threads = spec.threads;
  rc.campaign.verify_plan = spec.verify_plan;
  rc.check_every = spec.check_every;
  rc.max_new_trials = spec.max_new_trials;
  rc.target_half_width_pct = spec.target_half_width_pct;
  rc.shard_count = spec.shard_count;
  rc.shard_index = cell_shard_index(spec.shard_index, spec.shard_count,
                                    cell.shard_offset);
  rc.label = cell.label;
  return rc;
}

SuitePlan compile_suite(const SuiteSpec& spec) {
  if (spec.models.empty())
    throw std::invalid_argument("compile_suite: no models");
  if (spec.acts.empty() || spec.dtypes.empty() || spec.faults.empty() ||
      spec.techniques.empty())
    throw std::invalid_argument("compile_suite: empty grid dimension");
  if (spec.inputs == 0)
    throw std::invalid_argument("compile_suite: inputs == 0");
  if (spec.trials_divisor == 0)
    throw std::invalid_argument("compile_suite: trials_divisor == 0");
  if (spec.shard_count == 0 || spec.shard_index >= spec.shard_count)
    throw std::invalid_argument(
        "compile_suite: bad shard spec (want i/N with i < N)");
  // The name lands in checkpoint filenames and unescaped in the JSON
  // manifest: restrict it to a safe identifier alphabet.
  if (spec.name.empty())
    throw std::invalid_argument("compile_suite: empty suite name");
  for (const char c : spec.name)
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
          c == '_' || c == '-'))
      throw std::invalid_argument(
          "compile_suite: suite name must use only [A-Za-z0-9._-], got '" +
          spec.name + "'");
  for (const FaultModelSpec& f : spec.faults) {
    if (f.n_bits < 1)
      throw std::invalid_argument("compile_suite: n_bits < 1");
    if (f.cls == FaultClass::kWeight &&
        (f.ecc.coverage < 0.0 || f.ecc.coverage > 1.0))
      throw std::invalid_argument(
          "compile_suite: ecc coverage must be in [0, 1]");
  }
  // Duplicate grid values would compile two cells with the same id —
  // and therefore the same checkpoint file; refuse rather than silently
  // double-count (or abort mid-run on the shard-header mismatch).
  const auto reject_duplicates = [](const auto& values, const char* dim) {
    for (std::size_t i = 0; i < values.size(); ++i)
      for (std::size_t j = i + 1; j < values.size(); ++j)
        if (values[i] == values[j])
          throw std::invalid_argument(
              std::string("compile_suite: duplicate ") + dim +
              " in the grid");
  };
  reject_duplicates(spec.models, "model");
  reject_duplicates(spec.acts, "act");
  reject_duplicates(spec.dtypes, "dtype");
  reject_duplicates(spec.techniques, "technique");
  for (std::size_t i = 0; i < spec.faults.size(); ++i)
    for (std::size_t j = i + 1; j < spec.faults.size(); ++j)
      if (same_fault(spec.faults[i], spec.faults[j]))
        throw std::invalid_argument(
            "compile_suite: duplicate fault model in the grid");

  SuitePlan plan;
  plan.spec = spec;
  for (const models::ModelId model : spec.models)
    for (const ops::OpKind act : spec.acts)
      for (const tensor::DType dtype : spec.dtypes)
        for (const FaultModelSpec& fault : spec.faults)
          for (const Technique technique : spec.techniques) {
            SuiteCell c;
            c.model = model;
            c.act = act;
            c.dtype = dtype;
            c.fault = fault;
            c.technique = technique;
            c.trials_per_input =
                models::scaled_trials(model, spec.trials_small) /
                spec.trials_divisor;
            c.total_trials = c.trials_per_input * spec.inputs;
            c.global_offset = plan.total_trials;
            c.shard_offset = c.global_offset;
            c.id = cell_id_of(c);
            c.label = cell_label_of(c);
            plan.total_trials += c.total_trials;
            plan.cells.push_back(std::move(c));
          }
  // Phase-align each paired cell with its unprotected sibling (see
  // SuiteCell::shard_offset): the coverage join needs both cells to run
  // the same shard-local trial subset.
  for (SuiteCell& c : plan.cells) {
    if (c.technique != Technique::kRangerPaired) continue;
    for (const SuiteCell& sibling : plan.cells)
      if (sibling.technique == Technique::kUnprotected &&
          same_dims(sibling, c)) {
        c.shard_offset = sibling.global_offset;
        break;
      }
  }
  return plan;
}

Suite::Suite(SuiteSpec spec, models::WorkloadCache* shared_workloads)
    : plan_(compile_suite(spec)), shared_(shared_workloads) {
  if (!shared_) {
    models::WorkloadOptions wo;
    wo.eval_inputs = plan_.spec.inputs;
    wo.seed = plan_.spec.seed;
    owned_ = std::make_unique<models::WorkloadCache>(wo);
    return;
  }
  // A shared cache built for a different seed or input count would hand
  // out workloads whose goldens disagree with what the checkpoint
  // fingerprints claim (they record spec.seed, nothing
  // workload-derived) — refuse up front rather than mix campaigns.
  if (shared_->options().seed != plan_.spec.seed ||
      shared_->options().eval_inputs != plan_.spec.inputs)
    throw std::invalid_argument(
        "Suite: shared WorkloadCache options (seed/eval_inputs) disagree "
        "with the SuiteSpec");
}

const core::Bounds& Suite::bounds(models::ModelId id, ops::OpKind act) {
  const auto key = std::make_pair(static_cast<int>(id),
                                  static_cast<int>(act));
  auto it = bounds_.find(key);
  if (it == bounds_.end()) {
    util::metrics::counter_add("cache.bounds.build");
    util::trace::Span span("cache.bounds.build");
    const models::Workload& w = workloads().get(id, act);
    it = bounds_
             .emplace(key, core::RangeProfiler{}.derive_bounds(
                               w.graph, w.profile_feeds))
             .first;
  } else {
    util::metrics::counter_add("cache.bounds.hit");
  }
  return it->second;
}

const graph::Graph& Suite::protected_graph(models::ModelId id,
                                           ops::OpKind act) {
  const auto key = std::make_pair(static_cast<int>(id),
                                  static_cast<int>(act));
  auto it = protected_.find(key);
  if (it == protected_.end()) {
    util::metrics::counter_add("cache.protected.build");
    util::trace::Span span("cache.protected.build");
    const models::Workload& w = workloads().get(id, act);
    it = protected_
             .emplace(key, core::RangerTransform{}.apply(w.graph,
                                                         bounds(id, act)))
             .first;
  } else {
    util::metrics::counter_add("cache.protected.hit");
  }
  return it->second;
}

const TrialExecutor& Suite::executor(const SuiteCell& cell,
                                     const graph::Graph& g,
                                     const std::vector<Feeds>& inputs,
                                     bool is_protected) {
  const auto key = std::make_tuple(
      static_cast<int>(cell.model), static_cast<int>(cell.act),
      is_protected ? 1 : 0, static_cast<int>(cell.dtype));
  auto it = executors_.find(key);
  if (it != executors_.end()) {
    util::metrics::counter_add("cache.executor.hit");
  } else {
    util::metrics::counter_add("cache.executor.build");
    util::trace::Span span("cache.executor.build");
    // The fault model, trial count and seed never reach the executor —
    // only (graph, dtype, backend, batch) do — so one compiled executor
    // serves every cell of this (model, act, variant, dtype).
    CampaignConfig ec;
    ec.dtype = cell.dtype;
    ec.threads = plan_.spec.threads;
    // int8 cells calibrate activation formats from the same RangeProfiler
    // bounds Ranger derives its thresholds from.  bounds() is a pure
    // function of (model, act) at float32 profiling — independent of the
    // cell's dtype, shard or resume state — so the calibrated plan (and
    // with it the cell's trial stream) is identical across shards and
    // resumes, keeping checkpoint fingerprints compatible.
    if (cell.dtype == tensor::DType::kInt8)
      ec.int8_formats = core::int8_calibration(bounds(cell.model, cell.act));
    const unsigned workers = util::worker_count(
        std::max<std::size_t>(1, plan_.spec.check_every),
        plan_.spec.threads);
    it = executors_
             .emplace(key, std::make_unique<TrialExecutor>(g, ec, inputs,
                                                           workers))
             .first;
  }
  return *it->second;
}

const std::vector<tensor::Tensor>& Suite::unprotected_goldens(
    const SuiteCell& cell) {
  const auto key = std::make_tuple(static_cast<int>(cell.model),
                                   static_cast<int>(cell.act),
                                   static_cast<int>(cell.dtype));
  auto it = goldens_.find(key);
  if (it == goldens_.end()) {
    util::metrics::counter_add("cache.golden.build");
    util::trace::Span span("cache.golden.build");
    const models::Workload& w = workloads().get(cell.model, cell.act);
    const TrialExecutor& ex =
        executor(cell, w.graph, w.eval_feeds, /*is_protected=*/false);
    std::vector<tensor::Tensor> golds;
    golds.reserve(w.eval_feeds.size());
    for (std::size_t i = 0; i < w.eval_feeds.size(); ++i)
      golds.push_back(ex.golden_output(i));
    it = goldens_.emplace(key, std::move(golds)).first;
  } else {
    util::metrics::counter_add("cache.golden.hit");
  }
  return it->second;
}

SuiteResult Suite::run() {
  const SuiteSpec& spec = plan_.spec;
  if (!spec.checkpoint_dir.empty())
    std::filesystem::create_directories(spec.checkpoint_dir);

  SuiteResult out;
  out.plan = plan_;
  out.cells.reserve(plan_.cells.size());
  util::metrics::gauge_set("suite.cells_total", plan_.cells.size());
  util::metrics::counter_add("suite.trials_planned", plan_.total_trials);
  for (const SuiteCell& cell : plan_.cells) {
    util::trace::Span cell_span("suite.cell");
    cell_span.arg("trials", cell.total_trials);
    const models::Workload& w = workloads().get(cell.model, cell.act);
    if (w.eval_feeds.size() != spec.inputs)
      throw std::runtime_error(
          "Suite: workload produced " +
          std::to_string(w.eval_feeds.size()) + " eval inputs for cell " +
          cell.id + ", spec expects " + std::to_string(spec.inputs));

    const bool is_protected = cell.technique != Technique::kUnprotected;
    const graph::Graph* exec_g = &w.graph;
    const graph::Graph* plan_g = &w.graph;
    if (is_protected) {
      exec_g = &protected_graph(cell.model, cell.act);
      if (cell.technique == Technique::kRanger) plan_g = exec_g;
    }

    RunContext ctx;
    ctx.plan_graph = plan_g;
    ctx.exec_graph = exec_g;
    ctx.executor = &executor(cell, *exec_g, w.eval_feeds, is_protected);
    if (cell.technique == Technique::kRangerPaired)
      ctx.judge_golden = &unprotected_goldens(cell);

    RunnerConfig rc = cell_runner_config(spec, cell);
    if (!spec.checkpoint_dir.empty())
      rc.checkpoint_path = (std::filesystem::path(spec.checkpoint_dir) /
                            checkpoint_filename(spec, cell))
                               .string();

    const CampaignRunner runner(rc);
    out.cells.push_back(
        {cell, runner.run(ctx, w.eval_feeds,
                          models::default_judges(cell.model))});
    util::metrics::counter_add("suite.cells_done");
  }
  return out;
}

SuiteResult Suite::merge(const std::vector<std::string>& dirs) const {
  const SuiteSpec& spec = plan_.spec;
  SuiteResult out;
  out.plan = plan_;
  out.cells.reserve(plan_.cells.size());
  for (const SuiteCell& cell : plan_.cells) {
    const std::string prefix = spec.name + "." + cell.id + ".s";
    std::vector<std::string> paths;
    for (const std::string& dir : dirs) {
      if (!std::filesystem::is_directory(dir)) continue;
      for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.starts_with(prefix) && name.ends_with(".jsonl"))
          paths.push_back(entry.path().string());
      }
    }
    std::sort(paths.begin(), paths.end());
    if (paths.empty())
      throw std::runtime_error("Suite::merge: no checkpoints for cell " +
                               cell.id);
    CheckpointHeader header;
    CampaignReport report = merge_checkpoints(paths, &header);
    if (header.seed != spec.seed || header.inputs != spec.inputs ||
        header.trials_per_input != cell.trials_per_input ||
        header.dtype != tensor::dtype_name(cell.dtype) ||
        header.n_bits != cell.fault.n_bits ||
        header.consecutive_bits != cell.fault.consecutive ||
        header.fault_class != fault_class_token(cell.fault.cls) ||
        (cell.fault.cls == FaultClass::kWeight &&
         (header.weight_kind != weight_fault_kind_token(cell.fault.wkind) ||
          header.ecc != ecc_token(cell.fault.ecc))))
      throw std::runtime_error(
          "Suite::merge: checkpoints for cell " + cell.id +
          " were written by a different suite configuration");
    out.cells.push_back({cell, std::move(report)});
  }
  return out;
}

// ---- Manifest ---------------------------------------------------------------

void write_suite_manifest(const std::string& path, const SuiteResult& r) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f)
    throw std::runtime_error("write_suite_manifest: cannot write " + path);
  const SuiteSpec& spec = r.plan.spec;
  std::fprintf(f,
               "{\n"
               "  \"suite\": \"%s\",\n"
               "  \"seed\": %" PRIu64 ",\n"
               "  \"inputs\": %zu,\n"
               "  \"trials_small\": %zu,\n"
               "  \"trials_divisor\": %zu,\n"
               "  \"shard\": \"%zu/%zu\",\n"
               "  \"total_trials\": %zu,\n",
               spec.name.c_str(), spec.seed, spec.inputs, spec.trials_small,
               spec.trials_divisor, spec.shard_index, spec.shard_count,
               r.plan.total_trials);
  // Host metadata, so artifacts from different machines are comparable
  // (results are host-independent; throughput and thread counts are not).
  std::fprintf(f,
               "  \"host\": {\"hardware_concurrency\": %u, \"backend\": "
               "\"%s\", \"threads\": %u},\n",
               std::thread::hardware_concurrency(),
               std::string(ops::backend_name(ops::default_backend())).c_str(),
               spec.threads);

  std::fprintf(f, "  \"cells\": [");
  for (std::size_t i = 0; i < r.cells.size(); ++i) {
    const SuiteCell& c = r.cells[i].cell;
    const CampaignReport& rep = r.cells[i].report;
    std::fprintf(f,
                 "%s\n    {\"id\": \"%s\", \"label\": \"%s\", \"model\": "
                 "\"%s\", \"act\": \"%s\", \"dtype\": \"%s\", \"n_bits\": "
                 "%d, \"consecutive\": %d, \"fault_class\": \"%s\", "
                 "\"weight_kind\": \"%s\", \"ecc\": \"%s\", "
                 "\"technique\": \"%s\", "
                 "\"trials_per_input\": %zu, \"planned\": %zu, "
                 "\"executed\": %zu, \"judges\": [",
                 i ? "," : "", c.id.c_str(), c.label.c_str(),
                 models::model_token(c.model).c_str(),
                 std::string(act_token(c.act)).c_str(),
                 std::string(dtype_token(c.dtype)).c_str(),
                 c.fault.n_bits, c.fault.consecutive ? 1 : 0,
                 std::string(fault_class_token(c.fault.cls)).c_str(),
                 std::string(weight_fault_kind_token(c.fault.wkind)).c_str(),
                 ecc_token(c.fault.ecc).c_str(),
                 std::string(technique_token(c.technique)).c_str(),
                 c.trials_per_input, c.total_trials, rep.executed());
    for (std::size_t j = 0; j < rep.aggregate.size(); ++j) {
      const CampaignResult& a = rep.aggregate[j];
      const util::Interval w = a.wilson95();
      std::fprintf(f,
                   "%s{\"trials\": %zu, \"sdcs\": %zu, \"rate_pct\": "
                   "%.17g, \"wilson_pct\": %.17g, \"wilson_half_pct\": "
                   "%.17g}",
                   j ? ", " : "", a.trials, a.sdcs, a.sdc_rate_pct(),
                   100.0 * w.center, 100.0 * w.half_width);
    }
    std::fprintf(f, "]}");
  }
  std::fprintf(f, "\n  ],\n");

  std::fprintf(f, "  \"coverage\": [");
  bool first = true;
  for (std::size_t i = 0; i < r.cells.size(); ++i) {
    const auto cov = paired_coverage(r, i);
    if (!cov) continue;
    std::fprintf(f,
                 "%s\n    {\"cell\": \"%s\", \"sdcs\": %zu, \"covered\": "
                 "%zu, \"coverage_pct\": %.17g}",
                 first ? "" : ",", r.cells[i].cell.id.c_str(), cov->sdcs,
                 cov->covered, cov->pct());
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
}

// ---- Report layer -----------------------------------------------------------

std::string pct_pm(const CampaignResult& r) {
  const util::Interval w = r.wilson95();
  return util::Table::fmt(100.0 * w.center, 2) + " ±" +
         util::Table::fmt(100.0 * w.half_width, 2);
}

std::optional<PairedCoverage> paired_coverage(
    const SuiteResult& r, std::size_t paired_cell_index) {
  if (paired_cell_index >= r.cells.size()) return std::nullopt;
  const SuiteCellResult& paired = r.cells[paired_cell_index];
  if (paired.cell.technique != Technique::kRangerPaired)
    return std::nullopt;
  const SuiteCellResult* plain = nullptr;
  for (const SuiteCellResult& c : r.cells)
    if (c.cell.technique == Technique::kUnprotected &&
        same_dims(c.cell, paired.cell)) {
      plain = &c;
      break;
    }
  if (!plain) return std::nullopt;

  // Both cells draw the identical fault stream (same planner config on
  // the same planning graph), so records join one-to-one on the trial
  // index; partial runs join on the intersection.
  PairedCoverage cov;
  std::size_t a = 0, b = 0;
  const auto& ru = plain->report.records;
  const auto& rp = paired.report.records;
  while (a < ru.size() && b < rp.size()) {
    if (ru[a].trial < rp[b].trial) ++a;
    else if (ru[a].trial > rp[b].trial) ++b;
    else {
      if (ru[a].sdc_mask != 0) {
        ++cov.sdcs;
        if (rp[b].sdc_mask == 0) ++cov.covered;
      }
      ++a;
      ++b;
    }
  }
  return cov;
}

namespace {

// Models in spec order that have both techniques for (dtype, fault) and
// satisfy `steering` — the row sources of every figure table.
struct CellPair {
  models::ModelId model{};
  const SuiteCellResult* plain = nullptr;
  const SuiteCellResult* ranger = nullptr;
};

std::vector<CellPair> collect_pairs(const SuiteResult& r,
                                    tensor::DType dtype,
                                    const FaultModelSpec& fault,
                                    bool steering) {
  std::vector<CellPair> out;
  for (const models::ModelId id : r.plan.spec.models) {
    if (models::is_steering(id) != steering) continue;
    const SuiteCellResult* plain =
        find_cell(r, id, ops::OpKind::kInput, dtype, fault,
                  Technique::kUnprotected);
    const SuiteCellResult* ranger = find_cell(
        r, id, ops::OpKind::kInput, dtype, fault, Technique::kRanger);
    if (plain && ranger) out.push_back({id, plain, ranger});
  }
  return out;
}

}  // namespace

void print_fig6(const SuiteResult& r) {
  const auto pairs =
      collect_pairs(r, tensor::DType::kFixed32, single_bit_fault(), false);
  if (pairs.empty()) {
    std::printf("fig6: grid has no classifier fixed32 single-bit "
                "{unprotected, ranger} cells\n");
    return;
  }
  util::Table table({"model", "SDC orig (%)", "SDC Ranger (%)",
                     "reduction"});
  double sum_orig = 0.0, sum_ranger = 0.0;
  std::size_t rows = 0;
  for (const CellPair& p : pairs) {
    const auto labels = models::judge_labels(p.model);
    for (std::size_t j = 0; j < labels.size(); ++j) {
      const CampaignResult& o = p.plain->report.aggregate[j];
      const CampaignResult& g = p.ranger->report.aggregate[j];
      sum_orig += o.sdc_rate_pct();
      sum_ranger += g.sdc_rate_pct();
      ++rows;
      table.add_row({labels[j], pct_pm(o), pct_pm(g),
                     reduction_str(o.sdc_rate_pct(), g.sdc_rate_pct())});
    }
  }
  table.add_row({"Average",
                 util::Table::fmt(sum_orig / static_cast<double>(rows), 2),
                 util::Table::fmt(sum_ranger / static_cast<double>(rows), 2),
                 reduction_str(sum_orig, sum_ranger)});
  table.print();
}

void print_fig7(const SuiteResult& r) {
  const auto pairs =
      collect_pairs(r, tensor::DType::kFixed32, single_bit_fault(), true);
  if (pairs.empty()) {
    std::printf("fig7: grid has no steering fixed32 single-bit "
                "{unprotected, ranger} cells\n");
    return;
  }
  util::Table table({"model-threshold", "SDC orig (%)", "SDC Ranger (%)"});
  for (const CellPair& p : pairs) {
    const auto labels = models::judge_labels(p.model);
    double so = 0.0, sr = 0.0;
    for (std::size_t j = 0; j < labels.size(); ++j) {
      const CampaignResult& o = p.plain->report.aggregate[j];
      const CampaignResult& g = p.ranger->report.aggregate[j];
      so += o.sdc_rate_pct();
      sr += g.sdc_rate_pct();
      table.add_row({labels[j], pct_pm(o), pct_pm(g)});
    }
    const double n = static_cast<double>(labels.size());
    table.add_row({models::model_name(p.model) + " (Avg.)",
                   util::Table::fmt(so / n, 2),
                   util::Table::fmt(sr / n, 2)});
  }
  table.print();
}

namespace {

// Shared shape of the reduced-precision figures: fig9 is the paper's
// fixed16 table; the int8 variant asks the same question one step lower —
// does Ranger still contain single-bit faults once activations live in a
// calibrated 8-bit code?
void print_reduced_precision(const SuiteResult& r, tensor::DType dtype,
                             const char* missing_note) {
  util::Table table({"model (avg over metrics)", "SDC orig (%)",
                     "SDC Ranger (%)"});
  double sum_orig = 0.0, sum_ranger = 0.0;
  std::size_t rows = 0;
  for (const models::ModelId id : r.plan.spec.models) {
    const SuiteCellResult* plain =
        find_cell(r, id, ops::OpKind::kInput, dtype, single_bit_fault(),
                  Technique::kUnprotected);
    const SuiteCellResult* ranger =
        find_cell(r, id, ops::OpKind::kInput, dtype, single_bit_fault(),
                  Technique::kRanger);
    if (!plain || !ranger) continue;
    double so = 0.0, sr = 0.0;
    const std::size_t judges = plain->report.aggregate.size();
    for (std::size_t j = 0; j < judges; ++j) {
      so += plain->report.aggregate[j].sdc_rate_pct();
      sr += ranger->report.aggregate[j].sdc_rate_pct();
    }
    so /= static_cast<double>(judges);
    sr /= static_cast<double>(judges);
    sum_orig += so;
    sum_ranger += sr;
    ++rows;
    table.add_row({models::model_name(id), util::Table::fmt(so, 2),
                   util::Table::fmt(sr, 2)});
  }
  if (rows == 0) {
    std::printf("%s\n", missing_note);
    return;
  }
  const double n = static_cast<double>(rows);
  table.add_row({"Average", util::Table::fmt(sum_orig / n, 2),
                 util::Table::fmt(sum_ranger / n, 2)});
  table.print();
}

}  // namespace

void print_fig9(const SuiteResult& r) {
  print_reduced_precision(r, tensor::DType::kFixed16,
                          "fig9: grid has no fixed16 single-bit "
                          "{unprotected, ranger} cells");
}

void print_fig9_int8(const SuiteResult& r) {
  print_reduced_precision(r, tensor::DType::kInt8,
                          "int8: grid has no int8 single-bit "
                          "{unprotected, ranger} cells");
}

namespace {

// Shared shape of the two multi-bit figures (11: classifiers per judge,
// 12: steering averaged over thresholds).
void print_multibit(const SuiteResult& r, bool steering, bool per_judge,
                    const char* missing_note) {
  util::Table table({"model", "bits", "SDC orig (%)", "SDC Ranger (%)"});
  double sum_orig = 0.0, sum_ranger = 0.0;
  std::size_t rows = 0;
  for (const models::ModelId id : r.plan.spec.models) {
    if (models::is_steering(id) != steering) continue;
    for (int bits = 2; bits <= 5; ++bits) {
      const SuiteCellResult* plain =
          find_cell(r, id, ops::OpKind::kInput, tensor::DType::kFixed32,
                    activation_fault(bits), Technique::kUnprotected);
      const SuiteCellResult* ranger =
          find_cell(r, id, ops::OpKind::kInput, tensor::DType::kFixed32,
                    activation_fault(bits), Technique::kRanger);
      if (!plain || !ranger) continue;
      if (per_judge) {
        const auto labels = models::judge_labels(id);
        for (std::size_t j = 0; j < labels.size(); ++j) {
          const CampaignResult& o = plain->report.aggregate[j];
          const CampaignResult& g = ranger->report.aggregate[j];
          sum_orig += o.sdc_rate_pct();
          sum_ranger += g.sdc_rate_pct();
          ++rows;
          table.add_row({labels[j], std::to_string(bits), pct_pm(o),
                         pct_pm(g)});
        }
      } else {
        double so = 0.0, sr = 0.0;
        const std::size_t judges = plain->report.aggregate.size();
        for (std::size_t j = 0; j < judges; ++j) {
          so += plain->report.aggregate[j].sdc_rate_pct();
          sr += ranger->report.aggregate[j].sdc_rate_pct();
        }
        so /= static_cast<double>(judges);
        sr /= static_cast<double>(judges);
        sum_orig += so;
        sum_ranger += sr;
        ++rows;
        table.add_row({models::model_name(id), std::to_string(bits),
                       util::Table::fmt(so, 2), util::Table::fmt(sr, 2)});
      }
    }
  }
  if (rows == 0) {
    std::printf("%s\n", missing_note);
    return;
  }
  const double n = static_cast<double>(rows);
  table.add_row({"Average", "2-5", util::Table::fmt(sum_orig / n, 2),
                 util::Table::fmt(sum_ranger / n, 2)});
  table.print();
}

}  // namespace

void print_fig11(const SuiteResult& r) {
  print_multibit(r, /*steering=*/false, /*per_judge=*/true,
                 "fig11: grid has no classifier multi-bit (2-5) "
                 "{unprotected, ranger} cells");
}

void print_fig12(const SuiteResult& r) {
  print_multibit(r, /*steering=*/true, /*per_judge=*/false,
                 "fig12: grid has no steering multi-bit (2-5) "
                 "{unprotected, ranger} cells");
}

void print_table6_coverage(const SuiteResult& r, Suite* suite) {
  util::Table table({"model", "Ranger SDC coverage", "overhead"});
  double cov_sum = 0.0, ovh_sum = 0.0;
  std::size_t rows = 0;
  bool have_overhead = suite != nullptr;
  for (std::size_t i = 0; i < r.cells.size(); ++i) {
    const auto cov = paired_coverage(r, i);
    if (!cov) continue;
    const SuiteCell& c = r.cells[i].cell;
    std::string overhead = "-";
    if (suite) {
      const models::Workload& w = suite->workloads().get(c.model, c.act);
      const double pct = core::flops_overhead_pct(
          w.graph, suite->protected_graph(c.model, c.act));
      ovh_sum += pct;
      overhead = util::Table::pct(pct, 2);
    }
    cov_sum += cov->pct();
    ++rows;
    table.add_row({r.cells[i].cell.label, util::Table::pct(cov->pct(), 2),
                   overhead});
  }
  if (rows == 0) {
    std::printf("table6: grid has no (unprotected, ranger-paired) cell "
                "pairs to join coverage from\n");
    return;
  }
  const double n = static_cast<double>(rows);
  table.add_row({"Average", util::Table::pct(cov_sum / n, 2),
                 have_overhead ? util::Table::pct(ovh_sum / n, 2) : "-"});
  table.print();
}

namespace {

void print_cells(const SuiteResult& r) {
  util::Table table({"cell", "planned", "executed", "SDCs per metric"});
  for (const SuiteCellResult& c : r.cells) {
    std::string sdcs;
    for (const CampaignResult& a : c.report.aggregate) {
      if (!sdcs.empty()) sdcs += ",";
      sdcs += std::to_string(a.sdcs);
    }
    table.add_row({c.cell.id, std::to_string(c.cell.total_trials),
                   std::to_string(c.report.executed()), sdcs});
  }
  table.print();
}

}  // namespace

void print_suite_report(const SuiteResult& r, const std::string& mode,
                        Suite* suite) {
  const bool all = mode == "all";
  if (all || mode == "cells") print_cells(r);
  const auto section = [&](const char* name, auto&& fn) {
    if (!all && mode != name) return;
    std::printf("\n-- %s --\n", name);
    fn();
  };
  section("fig6", [&] { print_fig6(r); });
  section("fig7", [&] { print_fig7(r); });
  section("fig9", [&] { print_fig9(r); });
  section("int8", [&] { print_fig9_int8(r); });
  section("fig11", [&] { print_fig11(r); });
  section("fig12", [&] { print_fig12(r); });
  section("table6", [&] { print_table6_coverage(r, suite); });
}

}  // namespace rangerpp::fi

// Command-line driver: protect any zoo model with Ranger and run a
// fault-injection campaign against it.
//
//   ranger_cli --model lenet --dtype fixed32 --trials 1000 --bits 1
//              --percentile 100 --policy clamp [--dot out.dot]
//
// Prints the unprotected and protected SDC rates for the model's default
// judges, and optionally dumps the protected graph in Graphviz DOT form.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "core/range_profiler.hpp"
#include "core/ranger_transform.hpp"
#include "fi/campaign.hpp"
#include "graph/dot_export.hpp"
#include "models/workload.hpp"
#include "util/parse.hpp"

using namespace rangerpp;

namespace {

struct Args {
  models::ModelId model = models::ModelId::kLeNet;
  tensor::DType dtype = tensor::DType::kFixed32;
  std::size_t trials = 1000;
  int bits = 1;
  bool consecutive = false;
  double percentile = 100.0;
  core::RestrictionPolicy policy = core::RestrictionPolicy::kClamp;
  std::optional<std::string> dot_path;
  std::uint64_t seed = 2021;
};

std::optional<models::ModelId> parse_model(const std::string& s) {
  if (s == "lenet") return models::ModelId::kLeNet;
  if (s == "alexnet") return models::ModelId::kAlexNet;
  if (s == "vgg11") return models::ModelId::kVgg11;
  if (s == "vgg16") return models::ModelId::kVgg16;
  if (s == "resnet18") return models::ModelId::kResNet18;
  if (s == "squeezenet") return models::ModelId::kSqueezeNet;
  if (s == "dave") return models::ModelId::kDave;
  if (s == "dave-degrees") return models::ModelId::kDaveDegrees;
  if (s == "comma") return models::ModelId::kComma;
  return std::nullopt;
}

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--model lenet|alexnet|vgg11|vgg16|resnet18|squeezenet|"
      "dave|dave-degrees|comma]\n"
      "          [--dtype float32|fixed32|fixed16] [--trials N] "
      "[--bits 1-5] [--consecutive]\n"
      "          [--percentile P] [--policy clamp|zero|random] "
      "[--dot FILE] [--seed S]\n",
      argv0);
}

std::optional<Args> parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (flag == "--model") {
      const auto v = next();
      if (!v) return std::nullopt;
      const auto m = parse_model(*v);
      if (!m) {
        std::fprintf(stderr, "unknown model '%s'\n", v->c_str());
        return std::nullopt;
      }
      a.model = *m;
    } else if (flag == "--dtype") {
      const auto v = next();
      if (!v) return std::nullopt;
      if (*v == "float32") a.dtype = tensor::DType::kFloat32;
      else if (*v == "fixed32") a.dtype = tensor::DType::kFixed32;
      else if (*v == "fixed16") a.dtype = tensor::DType::kFixed16;
      else return std::nullopt;
    } else if (flag == "--trials") {
      // Strict full-string parses (util/parse.hpp): "100x" or "abc" must
      // refuse loudly, never silently run 100 (or 0) trials.
      const auto v = next();
      std::uint64_t trials = 0;
      if (!v || !util::parse_u64(v->c_str(), trials)) {
        std::fprintf(stderr, "--trials wants a non-negative integer\n");
        return std::nullopt;
      }
      a.trials = static_cast<std::size_t>(trials);
    } else if (flag == "--bits") {
      const auto v = next();
      std::int64_t bits = 0;
      if (!v || !util::parse_i64(v->c_str(), bits)) {
        std::fprintf(stderr, "--bits wants an integer\n");
        return std::nullopt;
      }
      a.bits = static_cast<int>(bits);
    } else if (flag == "--consecutive") {
      a.consecutive = true;
    } else if (flag == "--percentile") {
      const auto v = next();
      double pct = 0.0;
      if (!v || !util::parse_f64(v->c_str(), pct) || pct < 0.0 ||
          pct > 100.0) {
        std::fprintf(stderr, "--percentile wants a number in [0, 100]\n");
        return std::nullopt;
      }
      a.percentile = pct;
    } else if (flag == "--policy") {
      const auto v = next();
      if (!v) return std::nullopt;
      if (*v == "clamp") a.policy = core::RestrictionPolicy::kClamp;
      else if (*v == "zero") a.policy = core::RestrictionPolicy::kZero;
      else if (*v == "random") a.policy = core::RestrictionPolicy::kRandom;
      else return std::nullopt;
    } else if (flag == "--dot") {
      const auto v = next();
      if (!v) return std::nullopt;
      a.dot_path = *v;
    } else if (flag == "--seed") {
      const auto v = next();
      std::uint64_t seed = 0;
      if (!v || !util::parse_u64(v->c_str(), seed)) {
        std::fprintf(stderr, "--seed wants a non-negative integer\n");
        return std::nullopt;
      }
      a.seed = seed;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return std::nullopt;
    }
  }
  if (a.bits < 1 || a.bits > 8) {
    std::fprintf(stderr, "--bits must be 1-8\n");
    return std::nullopt;
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<Args> args = parse(argc, argv);
  if (!args) {
    usage(argv[0]);
    return 2;
  }

  std::printf("model=%s dtype=%s trials=%zu bits=%d%s percentile=%.1f\n",
              models::model_name(args->model).c_str(),
              std::string(tensor::dtype_name(args->dtype)).c_str(),
              args->trials, args->bits,
              args->consecutive ? " (consecutive)" : "",
              args->percentile);

  models::WorkloadOptions wo;
  wo.seed = args->seed;
  const models::Workload w = models::make_workload(args->model, wo);

  core::ProfileOptions po;
  po.percentile = args->percentile;
  const core::Bounds bounds =
      core::RangeProfiler{po}.derive_bounds(w.graph, w.profile_feeds);
  core::TransformOptions to;
  to.policy = args->policy;
  to.seed = args->seed;
  const graph::Graph protected_g =
      core::RangerTransform{to}.apply(w.graph, bounds);

  if (args->dot_path) {
    std::ofstream out(*args->dot_path);
    out << graph::to_dot(protected_g);
    std::printf("wrote protected graph to %s\n", args->dot_path->c_str());
  }

  fi::CampaignConfig cc;
  cc.dtype = args->dtype;
  cc.n_bits = args->bits;
  cc.consecutive_bits = args->consecutive;
  cc.trials_per_input = args->trials;
  cc.seed = args->seed;
  const fi::Campaign campaign(cc);
  const auto judges = models::default_judges(args->model);
  const auto labels = models::judge_labels(args->model);

  const auto orig = campaign.run_multi(w.graph, w.eval_feeds, judges);
  const auto prot = campaign.run_multi(protected_g, w.eval_feeds, judges);
  for (std::size_t j = 0; j < judges.size(); ++j) {
    std::printf("%-20s  orig %6.2f%% (+-%.2f)   ranger %6.2f%% (+-%.2f)\n",
                labels[j].c_str(), orig[j].sdc_rate_pct(),
                orig[j].ci95_pct(), prot[j].sdc_rate_pct(),
                prot[j].ci95_pct());
  }
  return 0;
}

// Running a statistical fault-injection campaign with the TensorFI-
// equivalent framework: thousands of independent single-bit-flip trials,
// SDC classification against the golden output, and 95% confidence
// intervals — the measurement methodology behind every figure in the
// paper.
#include <cstdio>

#include "core/range_profiler.hpp"
#include "core/ranger_transform.hpp"
#include "fi/campaign.hpp"
#include "models/workload.hpp"

using namespace rangerpp;

int main() {
  models::WorkloadOptions wo;
  wo.trained = false;  // He-initialised AlexNet: SDC is model-relative
  wo.eval_inputs = 5;
  const models::Workload w =
      models::make_workload(models::ModelId::kAlexNet, wo);

  const core::Bounds bounds =
      core::RangeProfiler{}.derive_bounds(w.graph, w.profile_feeds);
  const graph::Graph protected_g =
      core::RangerTransform{}.apply(w.graph, bounds);

  fi::CampaignConfig cfg;
  cfg.dtype = tensor::DType::kFixed32;  // the paper's RQ1-3 datatype
  cfg.trials_per_input = 500;
  cfg.seed = 7;
  const fi::Campaign campaign(cfg);
  const fi::Top1Judge judge;

  std::printf("running %zu trials x %zu inputs on AlexNet (fixed32)...\n",
              cfg.trials_per_input, w.eval_feeds.size());
  const fi::CampaignResult orig =
      campaign.run(w.graph, w.eval_feeds, judge);
  const fi::CampaignResult prot =
      campaign.run(protected_g, w.eval_feeds, judge);

  std::printf("unprotected: %zu/%zu SDCs = %.2f%% (+-%.2f%% at 95%%)\n",
              orig.sdcs, orig.trials, orig.sdc_rate_pct(), orig.ci95_pct());
  std::printf("with Ranger: %zu/%zu SDCs = %.2f%% (+-%.2f%% at 95%%)\n",
              prot.sdcs, prot.trials, prot.sdc_rate_pct(), prot.ci95_pct());

  // The same campaign under the multi-bit fault model (§VI-B).
  cfg.n_bits = 3;
  const fi::Campaign multi(cfg);
  const fi::CampaignResult orig3 =
      multi.run(w.graph, w.eval_feeds, judge);
  const fi::CampaignResult prot3 =
      multi.run(protected_g, w.eval_feeds, judge);
  std::printf("3-bit flips: %.2f%% unprotected vs %.2f%% with Ranger\n",
              orig3.sdc_rate_pct(), prot3.sdc_rate_pct());
  return 0;
}

// The paper's Fig 1 scenario: a transient fault during the inference of an
// AV steering DNN swings the predicted steering angle wildly; the same
// fault under Ranger is restricted back to (nearly) the correct angle.
//
// Sweeps every bit position at one fault site to show which bits are
// critical (high-order) vs benign (low-order) — the monotone-deviation
// property Ranger exploits (§III-B).
#include <cmath>
#include <cstdio>
#include <numbers>

#include "core/range_profiler.hpp"
#include "core/ranger_transform.hpp"
#include "fi/fault_model.hpp"
#include "graph/executor.hpp"
#include "models/workload.hpp"

using namespace rangerpp;

namespace {

double degrees(const tensor::Tensor& out, bool radians) {
  double v = out.at(0);
  if (radians) v *= 180.0 / std::numbers::pi;
  return v;
}

}  // namespace

int main() {
  std::printf("building (or loading) trained Dave steering model...\n");
  const models::Workload w = models::make_workload(models::ModelId::kDave);
  const bool rad = models::outputs_radians(w.id);

  const core::Bounds bounds =
      core::RangeProfiler{}.derive_bounds(w.graph, w.profile_feeds);
  const graph::Graph protected_g =
      core::RangerTransform{}.apply(w.graph, bounds);

  const graph::Executor exec({tensor::DType::kFixed32});
  const fi::Feeds& frame = w.eval_feeds.front();
  const double golden = degrees(exec.run(w.graph, frame), rad);
  std::printf("fault-free steering angle: %.2f deg\n\n", golden);

  // Pick a positive-valued element of the conv3 output as the fault site:
  // a negative site would have its positive-going flips masked by the
  // following ReLU (which is itself part of the paper's §III-A story).
  const char* site = "conv3/bias_add";
  std::size_t element = 0;
  exec.run(w.graph, frame,
           [&](const graph::Node& n, tensor::Tensor& t) {
             if (n.name != site) return;
             for (std::size_t i = 0; i < t.elements(); ++i)
               if (t.at(i) > 0.5f) {
                 element = i;
                 break;
               }
           });

  std::printf("%-4s  %-22s  %-22s\n", "bit", "unprotected angle (deg)",
              "Ranger angle (deg)");
  for (int bit = 31; bit >= 0; bit -= 3) {
    const fi::FaultSet fault{{site, element, bit}};
    const double plain = degrees(
        exec.run(w.graph, frame,
                 fi::make_injection_hook(w.graph, tensor::DType::kFixed32,
                                         fault)),
        rad);
    const double prot = degrees(
        exec.run(protected_g, frame,
                 fi::make_injection_hook(protected_g,
                                         tensor::DType::kFixed32, fault)),
        rad);
    std::printf("%-4d  %8.2f%-14s  %8.2f%-14s\n", bit, plain,
                std::abs(plain - golden) > 15.0 ? "  <-- deviation!" : "",
                prot, std::abs(prot - golden) > 15.0 ? "  <-- deviation!"
                                                     : "");
  }
  std::printf(
      "\nHigh-order-bit faults swing the unprotected angle (the Fig 1 "
      "156.58 -> -46.47 deg scenario); Ranger keeps every flip within a "
      "safe deviation of the fault-free angle.\n");
  return 0;
}

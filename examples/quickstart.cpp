// Quickstart: protect a DNN with Ranger in six steps.
//
//   1. build (or load) a model as a rangerpp dataflow graph;
//   2. derive restriction bounds by profiling training data;
//   3. compile a protected plan straight from the unprotected graph —
//      graph::compile()'s ranger option runs the Ranger transform as the
//      first compiler pass;
//   4. run both plans: fault-free outputs are identical;
//   5. inject a transient fault: the unprotected model misclassifies,
//      the protected one does not;
//   6. measure statistically: a sharded, stratified fault-injection
//      campaign with Wilson confidence intervals (fi::CampaignRunner).
#include <cstdio>

#include "core/range_profiler.hpp"
#include "core/ranger_transform.hpp"
#include "data/synthetic.hpp"
#include "fi/fault_model.hpp"
#include "fi/runner.hpp"
#include "graph/executor.hpp"
#include "models/workload.hpp"

using namespace rangerpp;

int main() {
  // 1. A trained LeNet on synthetic digits (weights are trained on first
  //    run and cached under ./rangerpp_weights/).
  std::printf("building (or loading) trained LeNet...\n");
  const models::Workload w = models::make_workload(models::ModelId::kLeNet);

  // 2. Derive per-activation-layer restriction bounds from ~20% of the
  //    training stream.  This is the only profiling Ranger needs — no
  //    fault injection, no retraining.
  const core::Bounds bounds =
      core::RangeProfiler{}.derive_bounds(w.graph, w.profile_feeds);
  std::printf("profiled %zu activation layers:\n", bounds.size());
  for (const auto& [layer, b] : bounds)
    std::printf("  %-8s -> [%.3f, %.3f]\n", layer.c_str(), b.low, b.up);

  // 3. Compile both plans (schedule, reachability sets, pre-quantized
  //    weights).  The protected plan is compiled straight from the
  //    unprotected graph: CompileOptions::ranger splices the clamp
  //    operators as the first pass of the compile pipeline — the old
  //    separate protect -> RangerTransform -> plan dance in one call.
  //    Plans + arenas are what every campaign runs on.
  const tensor::DType dtype = tensor::DType::kFixed32;
  const graph::Executor exec({dtype});
  const graph::ExecutionPlan plan = graph::compile(w.graph, {.dtype = dtype});
  const graph::ExecutionPlan plan_prot = graph::compile(
      w.graph, {.dtype = dtype, .ranger = core::ranger_pass(bounds)});
  const graph::Graph& protected_g = plan_prot.graph();
  for (const graph::PassTrace& t : plan_prot.report()->passes)
    if (t.name == "ranger_insert")
      std::printf("ranger_insert pass: %zu -> %zu nodes in %.2f ms\n",
                  t.nodes_before, t.nodes_after, t.ms);

  // 4. Check fault-free behaviour is unchanged by the protection.
  graph::Arena arena, arena_prot;
  const fi::Feeds& input = w.eval_feeds.front();
  const int label_plain = graph::argmax(exec.run(plan, input, arena));
  const std::vector<tensor::Tensor> golden = arena.outputs();
  const int label_prot =
      graph::argmax(exec.run(plan_prot, input, arena_prot));
  const std::vector<tensor::Tensor> golden_prot = arena_prot.outputs();
  std::printf("fault-free prediction: %d (unprotected) vs %d (Ranger)\n",
              label_plain, label_prot);

  // 5. Find a datapath transient fault (high-order bit flip in the first
  //    conv layer) that actually corrupts the unprotected prediction,
  //    then replay the identical fault on the protected graph.  Each probe
  //    resumes from the cached golden activations and recomputes only the
  //    fault's downstream cone — the partial re-execution that makes
  //    thousand-trial campaigns cheap.
  const graph::NodeId site = w.graph.find("conv1/bias_add");
  const graph::NodeId site_prot = protected_g.find("conv1/bias_add");
  for (std::size_t element = 0; element < 600; element += 7) {
    const fi::FaultSet fault{{"conv1/bias_add", element, /*bit=*/29}};
    const int faulty_plain = graph::argmax(exec.run_from(
        plan, golden, site, arena,
        fi::make_injection_hook(w.graph, dtype, fault)));
    if (faulty_plain == label_plain) continue;  // fault was benign
    const int faulty_prot = graph::argmax(exec.run_from(
        plan_prot, golden_prot, site_prot, arena_prot,
        fi::make_injection_hook(protected_g, dtype, fault)));
    std::printf(
        "bit-29 flip at conv1[%zu]: unprotected predicts %d <-- SDC!  "
        "Ranger predicts %d%s\n",
        element, faulty_plain, faulty_prot,
        faulty_prot == label_plain ? " (corrected)" : "");
    break;
  }

  // 6. One anecdote is not a rate: run a stratified fault-injection
  //    campaign through the CampaignRunner.  Trials are a pure function
  //    of (seed, trial index), so the two "shards" below — normally two
  //    machines writing JSONL checkpoints merged later — together execute
  //    exactly the trial set a single run would, and every per-stratum
  //    SDC rate carries a Wilson 95% interval.
  fi::RunnerConfig rc;
  rc.campaign.dtype = dtype;
  rc.campaign.trials_per_input = 200;
  rc.campaign.seed = 2021;
  rc.stratified.enabled = true;  // even coverage of (layer, bit) strata
  rc.label = "LeNet quickstart";
  const auto judges = models::default_judges(w.id);

  std::vector<fi::TrialRecord> records;
  std::map<std::string, double> stratum_weights;
  for (std::size_t shard = 0; shard < 2; ++shard) {
    rc.shard_index = shard;
    rc.shard_count = 2;
    const fi::CampaignReport part =
        fi::CampaignRunner(rc).run(w.graph, w.eval_feeds, judges);
    std::printf("shard %zu/2: %zu trials, %zu SDCs\n", shard,
                part.executed(), part.aggregate[0].sdcs);
    records.insert(records.end(), part.records.begin(),
                   part.records.end());
    for (const fi::StratumStats& s : part.strata)
      stratum_weights[s.key] = s.weight;
  }
  const fi::CampaignReport merged = fi::build_report(
      std::move(records), judges.size(),
      rc.campaign.trials_per_input * w.eval_feeds.size(), stratum_weights);
  // Under stratified sampling the number to quote is the *weighted*
  // estimate Σ wₛ p̂ₛ — the raw aggregate over-represents small layers
  // and bit classes by construction.
  const util::Interval est = merged.weighted[0];
  std::printf(
      "merged campaign: %zu trials over %zu (layer, bit-group) strata -> "
      "unprotected SDC rate %.2f%% (95%% CI: %.2f-%.2f%%, "
      "stratified estimate)\n",
      merged.executed(), merged.strata.size(), 100.0 * est.center,
      100.0 * est.lo(), 100.0 * est.hi());
  std::printf(
      "(campaign_cli runs the same campaign from the shell, with "
      "--shard i/N and resumable --checkpoint files)\n");
  return 0;
}

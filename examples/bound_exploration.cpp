// Exploring the accuracy/resilience trade-off of the restriction bound
// (the §VI-A knob): derive bounds at several percentiles from one
// profiling pass and inspect how tight bounds shrink the value envelope.
#include <cstdio>

#include "core/range_profiler.hpp"
#include "core/ranger_transform.hpp"
#include "models/workload.hpp"

using namespace rangerpp;

int main() {
  const models::Workload w =
      models::make_workload(models::ModelId::kComma);

  // One profiling pass over the training stream...
  const core::RangeProfile profile =
      core::RangeProfiler{}.profile(w.graph, w.profile_feeds);

  // ...then bounds at any percentile, for free.
  std::printf("%-10s", "layer");
  const double percentiles[] = {100.0, 99.9, 99.0, 98.0};
  for (const double p : percentiles) std::printf("  up@%-6.1f", p);
  std::printf("\n");

  for (const auto& [layer, stats] : profile.layers()) {
    if (stats.analytic) continue;
    std::printf("%-10s", layer.c_str());
    for (const double p : percentiles)
      std::printf("  %8.3f", profile.bounds(p).at(layer).up);
    std::printf("\n");
  }

  // Tighter bounds => more restriction ops bite on natural values; the
  // fault-free steering accuracy degrades gracefully (Table V).
  std::printf("\n%-10s  %-12s  %-12s\n", "bound", "RMSE (deg)",
              "avg dev (deg)");
  for (const double p : percentiles) {
    const graph::Graph g =
        core::RangerTransform{}.apply(w.graph, profile.bounds(p));
    const models::SteeringMetrics m =
        models::steering_metrics(g, w.input_name, w.validation, false);
    std::printf("%8.1f%%  %12.3f  %12.3f\n", p, m.rmse, m.avg_deviation);
  }
  return 0;
}
